//! The fault-tolerant replicated serving tier: N independent engine
//! replicas behind one router with health-checked routing, bounded
//! retry, admission control and graceful drain.
//!
//! A [`ReplicaSet`] owns one [`InferenceRuntime`] per engine snapshot.
//! Requests enter through [`ReplicaSet::predict`], which:
//!
//! 1. **admits or sheds** — when the cluster already has `max_inflight`
//!    requests in flight, the request fails fast with
//!    [`PipelineError::Overloaded`] instead of queuing toward a missed
//!    deadline;
//! 2. **routes** — round-robin over replicas whose circuit breaker
//!    admits traffic (closed, or open-past-cool-down taking a half-open
//!    probe);
//! 3. **waits with a deadline** — a replica that fails, stalls past the
//!    remaining budget, or dies feeds the breaker and the request is
//!    **retried with exponential backoff** on the next admissible
//!    replica, up to [`RetryPolicy::max_attempts`] times within
//!    [`RetryPolicy::deadline`];
//! 4. **reports typed outcomes** — exhausted retries return
//!    [`PipelineError::Unavailable`], an expired budget
//!    [`PipelineError::DeadlineExceeded`]; a successful reply names the
//!    replica that served it so chaos tests can assert the survivor
//!    invariant (healthy replicas' answers are bit-identical to a
//!    fault-free run).
//!
//! [`ReplicaSet::drain`] removes a replica gracefully: the router stops
//! sending new work, every batch already submitted finishes (their
//! handles all resolve), and the replica's final metrics are folded into
//! the cluster's retired rollup.

use crate::batcher::{lock_metrics, InferenceRuntime, RuntimeConfig, WaitOutcome};
use crate::engine::BatchEngine;
use crate::retry::{Breaker, BreakerConfig, ReplicaState, RetryPolicy};
use nshd_core::PipelineError;
use nshd_obs::{clock, Json, ServingAccumulator, ServingMetrics};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Knobs for the replicated serving tier.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Per-replica batcher configuration (workers, `max_batch`,
    /// `max_wait`).
    pub runtime: RuntimeConfig,
    /// Retry/backoff/deadline policy applied to every request.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds applied to every replica.
    pub breaker: BreakerConfig,
    /// Admission cap: requests in flight across the cluster beyond
    /// which new arrivals are shed with [`PipelineError::Overloaded`].
    /// `0` picks a default of `replicas * max_batch * 4`.
    pub max_inflight: usize,
}

impl ClusterConfig {
    /// Checks that the configuration can serve at all.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when the per-replica runtime
    /// config is unusable or `retry.max_attempts` is zero.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.runtime.validate()?;
        if self.retry.max_attempts == 0 {
            return Err(PipelineError::Runtime {
                stage: "config",
                detail: "retry policy needs at least one attempt".into(),
            });
        }
        Ok(())
    }

    fn effective_inflight_cap(&self, replicas: usize) -> usize {
        if self.max_inflight > 0 {
            self.max_inflight
        } else {
            replicas.max(1) * self.runtime.max_batch.max(1) * 4
        }
    }
}

/// A successful reply from the replica set: the output plus where and
/// how it was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReply<T> {
    /// The engine's output for this request.
    pub value: T,
    /// Index of the replica that served the successful attempt.
    pub replica: usize,
    /// Attempts consumed (1 = no retry was needed).
    pub attempts: u32,
}

/// One replica slot: its runtime (absent once drained), the engine it
/// serves (kept so the slot can be re-admitted or hot-swapped), its
/// breaker, and the drain flag.
struct Slot<E: BatchEngine> {
    runtime: RwLock<Option<InferenceRuntime<E>>>,
    engine: RwLock<Arc<E>>,
    breaker: Mutex<Breaker>,
    draining: AtomicBool,
}

/// Locks a slot mutex, recovering from poisoning (breaker state stays
/// usable even if a panic ever crossed it).
fn lock_breaker(breaker: &Mutex<Breaker>) -> MutexGuard<'_, Breaker> {
    breaker.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fault-tolerant set of engine replicas behind one routing front.
///
/// Every replica is an independent [`BatchEngine`] snapshot served by
/// its own [`InferenceRuntime`]; the set adds health-checked routing
/// (consecutive-failure circuit breaker with half-open probes),
/// deadline-bounded retry with exponential backoff, admission
/// control/load-shedding, and graceful drain. See the module docs for
/// the request lifecycle.
///
/// # Examples
///
/// ```no_run
/// use nshd_core::NshdEngine;
/// use nshd_runtime::{ClusterConfig, ReplicaSet};
/// use std::sync::Arc;
/// # let engine: NshdEngine = unimplemented!();
/// # let image: nshd_tensor::Tensor = unimplemented!();
/// let replicas: Vec<Arc<NshdEngine>> =
///     (0..3).map(|_| Arc::new(engine.clone())).collect();
/// let set = ReplicaSet::new(replicas, ClusterConfig::default()).unwrap();
/// let reply = set.predict(image).unwrap();
/// println!("class {} from replica {}", reply.value, reply.replica);
/// println!("{}", set.shutdown().to_json());
/// ```
pub struct ReplicaSet<E: BatchEngine> {
    slots: Vec<Slot<E>>,
    config: ClusterConfig,
    inflight_cap: usize,
    round_robin: AtomicUsize,
    inflight: AtomicUsize,
    /// End-to-end router accounting: per-request latency across all
    /// attempts, plus the shed/retry counters.
    router: Mutex<ServingAccumulator>,
    /// Rollup of drained replicas' accumulated serving history, so
    /// cluster totals survive replica removal.
    retired: Mutex<ServingAccumulator>,
}

impl<E: BatchEngine> ReplicaSet<E> {
    /// Starts one [`InferenceRuntime`] per engine snapshot after
    /// validating the configuration. Every engine is statically verified
    /// by its runtime before any thread spawns; if any replica fails to
    /// start, the ones already started are drained before the error is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] for an empty engine list or an
    /// unusable configuration, and the first failing replica's error
    /// otherwise.
    #[must_use = "the replica set only serves when construction succeeds"]
    pub fn new(engines: Vec<Arc<E>>, config: ClusterConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        if engines.is_empty() {
            return Err(PipelineError::Runtime {
                stage: "config",
                detail: "a replica set needs at least one engine".into(),
            });
        }
        let replicas = engines.len();
        let mut slots = Vec::with_capacity(replicas);
        for engine in engines {
            // A failed replica start drops `slots`, draining the
            // runtimes already spawned.
            let runtime = InferenceRuntime::new(engine.clone(), config.runtime.clone())?;
            slots.push(Slot {
                runtime: RwLock::new(Some(runtime)),
                engine: RwLock::new(engine),
                breaker: Mutex::new(Breaker::new(config.breaker)),
                draining: AtomicBool::new(false),
            });
        }
        let inflight_cap = config.effective_inflight_cap(replicas);
        Ok(ReplicaSet {
            slots,
            config,
            inflight_cap,
            round_robin: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            router: Mutex::new(ServingAccumulator::new()),
            retired: Mutex::new(ServingAccumulator::new()),
        })
    }

    /// Number of replica slots (drained ones included).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the set has no replica slots (never true for a
    /// constructed set).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The admission cap currently in force.
    pub fn inflight_cap(&self) -> usize {
        self.inflight_cap
    }

    /// The health state of replica `index` (out-of-range reads as
    /// [`ReplicaState::Removed`]).
    pub fn replica_state(&self, index: usize) -> ReplicaState {
        let Some(slot) = self.slots.get(index) else {
            return ReplicaState::Removed;
        };
        slot_state(slot, clock::now())
    }

    /// Replicas currently admitting traffic (serving or probing).
    pub fn healthy_count(&self) -> usize {
        let now = clock::now();
        self.slots
            .iter()
            .filter(|s| matches!(slot_state(s, now), ReplicaState::Serving | ReplicaState::Probing))
            .count()
    }

    /// Serves one request through the replica set: admission check,
    /// health-routed dispatch, deadline-bounded wait, bounded retry with
    /// exponential backoff onto surviving replicas.
    ///
    /// # Errors
    ///
    /// - [`PipelineError::Overloaded`] — shed at admission (fail fast);
    /// - [`PipelineError::DeadlineExceeded`] — the end-to-end budget ran
    ///   out before any replica answered;
    /// - [`PipelineError::Unavailable`] — every attempt failed; `last`
    ///   carries the final attempt's error.
    pub fn predict(&self, input: E::Input) -> Result<ClusterReply<E::Output>, PipelineError>
    where
        E::Input: Clone,
    {
        let policy = self.config.retry;
        let start = clock::now();
        let deadline = start + policy.deadline;

        // Admission control: shed instead of queuing past capacity. The
        // count is held (and always released) by the guard below.
        let admitted = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        let _inflight_guard = InflightGuard { counter: &self.inflight };
        if admitted > self.inflight_cap {
            lock_metrics(&self.router).note_shed();
            return Err(PipelineError::Overloaded {
                inflight: admitted,
                capacity: self.inflight_cap,
            });
        }

        lock_metrics(&self.router).note_submit(start);
        let budget_ms = policy.deadline.as_millis() as u64;
        let mut last_error = PipelineError::Runtime {
            stage: "route",
            detail: "no replica admitted the request".into(),
        };
        for attempt in 1..=policy.max_attempts {
            if attempt > 1 {
                lock_metrics(&self.router).note_retry();
                let pause = policy.backoff(attempt - 1);
                if clock::now() + pause >= deadline {
                    return self.fail(start, PipelineError::DeadlineExceeded { budget_ms });
                }
                std::thread::sleep(pause);
            }
            let now = clock::now();
            if now >= deadline {
                return self.fail(start, PipelineError::DeadlineExceeded { budget_ms });
            }
            let Some(index) = self.route(now) else {
                last_error = PipelineError::Runtime {
                    stage: "route",
                    detail: "no healthy replica available".into(),
                };
                continue;
            };
            let attempt_start = clock::now();
            match self.dispatch(index, input.clone(), deadline) {
                Ok(value) => {
                    lock_breaker(&self.slots[index].breaker).on_success();
                    let done = clock::now();
                    lock_metrics(&self.router).note_batch(
                        1,
                        [(
                            attempt_start.saturating_duration_since(start),
                            done.saturating_duration_since(start),
                        )],
                        done.saturating_duration_since(attempt_start),
                        done,
                    );
                    return Ok(ClusterReply { value, replica: index, attempts: attempt });
                }
                Err(e) => {
                    lock_breaker(&self.slots[index].breaker).on_failure(clock::now());
                    if matches!(e, PipelineError::DeadlineExceeded { .. }) {
                        // The budget is gone; further attempts cannot
                        // beat it.
                        return self.fail(start, e);
                    }
                    last_error = e;
                }
            }
        }
        self.fail(
            start,
            PipelineError::Unavailable {
                attempts: self.config.retry.max_attempts,
                last: Box::new(last_error),
            },
        )
    }

    /// Round-robin over slots, returning the first one whose breaker
    /// admits traffic and that is not draining. Open breakers past their
    /// cool-down convert to a half-open probe here.
    fn route(&self, now: std::time::Instant) -> Option<usize> {
        let n = self.slots.len();
        let offset = self.round_robin.fetch_add(1, Ordering::Relaxed);
        for step in 0..n {
            let index = (offset + step) % n;
            let slot = &self.slots[index];
            if slot.draining.load(Ordering::Acquire) {
                continue;
            }
            if lock_breaker(&slot.breaker).admit(now) {
                return Some(index);
            }
        }
        None
    }

    /// One attempt against one replica: submit, then wait out the
    /// remaining deadline.
    fn dispatch(
        &self,
        index: usize,
        input: E::Input,
        deadline: std::time::Instant,
    ) -> Result<E::Output, PipelineError> {
        let handle = {
            let guard = self.slots[index].runtime.read().unwrap_or_else(|p| p.into_inner());
            let Some(runtime) = guard.as_ref() else {
                return Err(PipelineError::Runtime {
                    stage: "route",
                    detail: format!("replica {index} already removed"),
                });
            };
            runtime.submit(input)?
            // The read lock drops here: waiting must not block a
            // concurrent drain (the replica's own runtime guarantees
            // every submitted request is answered before removal).
        };
        let now = clock::now();
        if now >= deadline {
            return Err(PipelineError::DeadlineExceeded {
                budget_ms: self.config.retry.deadline.as_millis() as u64,
            });
        }
        match handle.wait_timeout(deadline.saturating_duration_since(now)) {
            WaitOutcome::Ready(result) => result,
            WaitOutcome::Timeout => Err(PipelineError::DeadlineExceeded {
                budget_ms: self.config.retry.deadline.as_millis() as u64,
            }),
            WaitOutcome::WorkerGone(e) => Err(e),
        }
    }

    /// Records a failed request's end-to-end latency, then returns the
    /// error.
    fn fail<T>(&self, start: std::time::Instant, error: PipelineError) -> Result<T, PipelineError> {
        let done = clock::now();
        lock_metrics(&self.router).note_batch(
            1,
            [(done.saturating_duration_since(start), done.saturating_duration_since(start))],
            std::time::Duration::ZERO,
            done,
        );
        Err(error)
    }

    /// Gracefully drains replica `index`: the router stops routing to it
    /// immediately, every request already submitted to it is executed
    /// (all handles resolve), its threads are joined, and its final
    /// serving metrics are returned after being folded into the
    /// cluster's retired rollup.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `index` is out of range
    /// or the replica was already drained.
    pub fn drain(&self, index: usize) -> Result<ServingMetrics, PipelineError> {
        let slot = self.slots.get(index).ok_or_else(|| PipelineError::Runtime {
            stage: "drain",
            detail: format!("replica index {index} out of range ({} slots)", self.slots.len()),
        })?;
        slot.draining.store(true, Ordering::Release);
        let runtime = {
            let mut guard = slot.runtime.write().unwrap_or_else(|p| p.into_inner());
            guard.take()
        };
        let Some(runtime) = runtime else {
            return Err(PipelineError::Runtime {
                stage: "drain",
                detail: format!("replica {index} already drained"),
            });
        };
        runtime.merge_metrics_into(&mut lock_metrics(&self.retired));
        // Shutdown blocks until every in-flight batch has executed and
        // answered its handles, then joins the replica's threads.
        Ok(runtime.shutdown())
    }

    /// The engine currently installed in slot `index` (still available
    /// after a drain, so a hot-swap can derive the replacement from the
    /// incumbent).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `index` is out of range.
    pub fn engine(&self, index: usize) -> Result<Arc<E>, PipelineError> {
        let slot = self.slots.get(index).ok_or_else(|| PipelineError::Runtime {
            stage: "swap",
            detail: format!("replica index {index} out of range ({} slots)", self.slots.len()),
        })?;
        Ok(slot.engine.read().unwrap_or_else(|p| p.into_inner()).clone())
    }

    /// Re-admits a drained slot with a (possibly new) engine: starts a
    /// fresh [`InferenceRuntime`] around `engine` (statically verifying
    /// it first), resets the slot's circuit breaker, and reopens the
    /// slot to the router. The drained incumbent's serving history stays
    /// in the retired rollup; the new runtime starts counting from zero.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `index` is out of range
    /// or the slot still holds a live runtime (drain it first), and the
    /// engine's own error when verification rejects it — in which case
    /// the slot stays drained.
    pub fn readmit(&self, index: usize, engine: Arc<E>) -> Result<(), PipelineError> {
        let slot = self.slots.get(index).ok_or_else(|| PipelineError::Runtime {
            stage: "swap",
            detail: format!("replica index {index} out of range ({} slots)", self.slots.len()),
        })?;
        let mut guard = slot.runtime.write().unwrap_or_else(|p| p.into_inner());
        if guard.is_some() {
            return Err(PipelineError::Runtime {
                stage: "swap",
                detail: format!("replica {index} still serving; drain it before readmitting"),
            });
        }
        // Verification happens inside the runtime constructor; a
        // rejected engine leaves the slot drained and the set unchanged.
        let runtime = InferenceRuntime::new(engine.clone(), self.config.runtime.clone())?;
        *guard = Some(runtime);
        *slot.engine.write().unwrap_or_else(|p| p.into_inner()) = engine;
        *lock_breaker(&slot.breaker) = Breaker::new(self.config.breaker);
        // Reopen the slot to the router only once the runtime is
        // installed and the breaker is fresh.
        slot.draining.store(false, Ordering::Release);
        nshd_obs::counter("replica.readmits").inc();
        Ok(())
    }

    /// Replaces slot `index`'s engine mid-traffic: gracefully drains the
    /// incumbent (every request already routed to it is answered from
    /// the **old** engine — the per-batch snapshot pin in the batcher
    /// guarantees no batch straddles the swap), then re-admits the slot
    /// around `engine`. Traffic arriving during the swap is routed to
    /// the other replicas by the health-checked router.
    ///
    /// Returns the drained incumbent runtime's final serving metrics.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Runtime`] when `index` is out of range
    /// or already drained, and the new engine's own error when
    /// verification rejects it (the slot is left drained in that case —
    /// inspect the error and [`readmit`](ReplicaSet::readmit) a good
    /// engine).
    pub fn hot_swap(&self, index: usize, engine: Arc<E>) -> Result<ServingMetrics, PipelineError> {
        let _sp = nshd_obs::span("replica_swap");
        let metrics = self.drain(index)?;
        self.readmit(index, engine)?;
        nshd_obs::counter("replica.hot_swaps").inc();
        Ok(metrics)
    }

    /// A point-in-time snapshot of the cluster's serving statistics.
    pub fn metrics(&self) -> ClusterMetrics {
        let now = clock::now();
        let mut rollup = ServingAccumulator::new();
        rollup.merge_from(&lock_metrics(&self.retired));
        let mut replicas = Vec::with_capacity(self.slots.len());
        for (index, slot) in self.slots.iter().enumerate() {
            let state = slot_state(slot, now);
            let serving = {
                let guard = slot.runtime.read().unwrap_or_else(|p| p.into_inner());
                match guard.as_ref() {
                    Some(runtime) => {
                        runtime.merge_metrics_into(&mut rollup);
                        runtime.metrics()
                    }
                    None => ServingMetrics::default(),
                }
            };
            replicas.push(ReplicaMetrics { replica: index, state, serving });
        }
        ClusterMetrics {
            router: lock_metrics(&self.router).snapshot(),
            rollup: rollup.snapshot(),
            replicas,
        }
    }

    /// Graceful cluster shutdown: drains every remaining replica (all
    /// outstanding handles resolve first) and returns the final
    /// statistics.
    pub fn shutdown(self) -> ClusterMetrics {
        for index in 0..self.slots.len() {
            // Already-drained replicas are fine; everything else drains.
            let _ = self.drain(index);
        }
        self.metrics()
    }
}

/// Combines the breaker's view with the drain flags into one state.
fn slot_state<E: BatchEngine>(slot: &Slot<E>, now: std::time::Instant) -> ReplicaState {
    let removed = {
        let guard = slot.runtime.read().unwrap_or_else(|p| p.into_inner());
        guard.is_none()
    };
    if removed {
        ReplicaState::Removed
    } else if slot.draining.load(Ordering::Acquire) {
        ReplicaState::Draining
    } else {
        lock_breaker(&slot.breaker).state(now)
    }
}

/// RAII decrement for the cluster in-flight counter.
struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Per-replica slice of a [`ClusterMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaMetrics {
    /// Replica index within the set.
    pub replica: usize,
    /// Health state at snapshot time.
    pub state: ReplicaState,
    /// The replica runtime's own serving statistics (zeroed once the
    /// replica is drained; its history lives on in the rollup).
    pub serving: ServingMetrics,
}

/// Frozen cluster-level serving statistics: the router's end-to-end
/// view, a rollup of every replica's batching statistics (drained
/// replicas included), and the per-replica breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// End-to-end request accounting at the router: latency across all
    /// attempts, shed and retry counters.
    pub router: ServingMetrics,
    /// Merged per-replica serving statistics (bucket-exact histogram
    /// rollup, including drained replicas' history).
    pub rollup: ServingMetrics,
    /// Per-replica state and statistics.
    pub replicas: Vec<ReplicaMetrics>,
}

impl ClusterMetrics {
    /// Compact JSON rendering: `router` and `rollup` use the
    /// [`ServingMetrics::to_json`] schema; `replicas` adds
    /// `{replica, state, serving}` per slot.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("router", Json::Raw(self.router.to_json())),
            ("rollup", Json::Raw(self.rollup.to_json())),
            (
                "replicas",
                Json::arr(self.replicas.iter().map(|r| {
                    Json::obj(vec![
                        ("replica", Json::from(r.replica)),
                        ("state", Json::str(r.state.label())),
                        ("serving", Json::Raw(r.serving.to_json())),
                    ])
                })),
            ),
        ])
        .to_string()
    }
}
