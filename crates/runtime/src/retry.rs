//! Retry/backoff policy and the per-replica circuit breaker used by the
//! replicated serving tier.
//!
//! Both are plain value-level state machines: [`RetryPolicy`] decides
//! how often and how long a request may be re-dispatched, and
//! [`Breaker`] tracks one replica's health from the router's
//! observations (consecutive failures open the circuit; after a
//! cool-down a single half-open probe decides re-admission). Keeping
//! them free of threads and channels makes the routing logic unit
//! testable without spawning a single replica.

use std::time::{Duration, Instant};

/// Bounded-retry policy with exponential backoff and a per-request
/// deadline.
///
/// A request is attempted at most `max_attempts` times across the
/// replica set, waiting `backoff(attempt)` between consecutive attempts
/// (doubling from `base_backoff`, capped at `max_backoff`), and never
/// past `deadline` end to end — whichever bound is hit first fails the
/// request with a typed error instead of queuing it to death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per request across the whole replica set (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound any single backoff is clamped to.
    pub max_backoff: Duration,
    /// End-to-end budget per request, spanning every attempt, backoff
    /// and queue wait.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based: the wait
    /// between attempt `retry` and attempt `retry + 1`): `base_backoff *
    /// 2^(retry-1)` clamped to `max_backoff`. `retry == 0` (before the
    /// first attempt) waits nothing.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let doublings = retry.saturating_sub(1).min(31);
        self.base_backoff.saturating_mul(1u32 << doublings).min(self.max_backoff)
    }
}

/// Circuit-breaker thresholds for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the circuit (eject the replica).
    pub failure_threshold: u32,
    /// How long an open circuit rejects traffic before allowing a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(100) }
    }
}

/// Externally visible health of one replica, as reported by
/// [`ReplicaSet::replica_state`](crate::ReplicaSet::replica_state) and
/// the cluster metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Circuit closed: the replica takes live traffic.
    Serving,
    /// Circuit open: consecutive failures ejected the replica; it takes
    /// no traffic until its cool-down elapses.
    Ejected,
    /// Half-open: one probe request is in flight; its outcome decides
    /// between re-admission and another ejection.
    Probing,
    /// The replica is draining: no new requests, in-flight batches
    /// finish.
    Draining,
    /// The replica was drained and removed from the set.
    Removed,
}

impl ReplicaState {
    /// Stable lowercase label used in JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaState::Serving => "serving",
            ReplicaState::Ejected => "ejected",
            ReplicaState::Probing => "probing",
            ReplicaState::Draining => "draining",
            ReplicaState::Removed => "removed",
        }
    }
}

/// The per-replica circuit-breaker state machine.
///
/// Closed → (threshold consecutive failures) → Open → (cool-down
/// elapses, next routing decision becomes the probe) → Half-open →
/// success re-closes / failure re-opens. All transitions happen inside
/// the router's mutex; the breaker itself is not thread-safe.
#[derive(Debug)]
pub(crate) struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
}

#[derive(Debug)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

impl Breaker {
    pub(crate) fn new(config: BreakerConfig) -> Breaker {
        Breaker { config, state: BreakerState::Closed { consecutive_failures: 0 } }
    }

    /// Whether the router may send a request now. An open breaker whose
    /// cool-down has elapsed transitions to half-open and admits exactly
    /// one probe; further requests are rejected until the probe reports.
    pub(crate) fn admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful request: closes the circuit and clears the
    /// failure streak (half-open probes re-admit the replica here).
    pub(crate) fn on_success(&mut self) {
        self.state = BreakerState::Closed { consecutive_failures: 0 };
    }

    /// Records a failed request: extends the failure streak, opening the
    /// circuit at the threshold; a failed half-open probe re-opens
    /// immediately.
    pub(crate) fn on_failure(&mut self, now: Instant) {
        match &mut self.state {
            BreakerState::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open { until: now + self.config.cooldown };
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { until: now + self.config.cooldown };
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// The breaker's contribution to [`ReplicaState`] (drain states are
    /// layered on top by the replica set).
    pub(crate) fn state(&self, now: Instant) -> ReplicaState {
        match self.state {
            BreakerState::Closed { .. } => ReplicaState::Serving,
            // An elapsed cool-down reads as probing: the next routed
            // request will be the probe.
            BreakerState::Open { until } if now >= until => ReplicaState::Probing,
            BreakerState::Open { .. } => ReplicaState::Ejected,
            BreakerState::HalfOpen => ReplicaState::Probing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshd_obs::clock;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
            deadline: Duration::from_secs(1),
        };
        assert_eq!(policy.backoff(0), Duration::ZERO);
        assert_eq!(policy.backoff(1), Duration::from_millis(2));
        assert_eq!(policy.backoff(2), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(8));
        assert_eq!(policy.backoff(4), Duration::from_millis(9)); // capped
        assert_eq!(policy.backoff(64), Duration::from_millis(9)); // no overflow
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let cfg = BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(50) };
        let mut breaker = Breaker::new(cfg);
        let t0 = clock::now();
        assert!(breaker.admit(t0));
        assert_eq!(breaker.state(t0), ReplicaState::Serving);

        breaker.on_failure(t0);
        breaker.on_failure(t0);
        assert!(breaker.admit(t0), "below threshold still admits");
        breaker.on_failure(t0);
        assert!(!breaker.admit(t0), "threshold reached must eject");
        assert_eq!(breaker.state(t0), ReplicaState::Ejected);

        // Cool-down elapsed: exactly one probe is admitted.
        let later = t0 + cfg.cooldown;
        assert_eq!(breaker.state(later), ReplicaState::Probing);
        assert!(breaker.admit(later));
        assert!(!breaker.admit(later), "only one half-open probe at a time");
        assert_eq!(breaker.state(later), ReplicaState::Probing);

        // A successful probe re-admits; a failure streak must start over.
        breaker.on_success();
        assert_eq!(breaker.state(later), ReplicaState::Serving);
        breaker.on_failure(later);
        breaker.on_failure(later);
        assert!(breaker.admit(later), "streak was reset by the probe success");
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let cfg = BreakerConfig { failure_threshold: 1, cooldown: Duration::from_millis(40) };
        let mut breaker = Breaker::new(cfg);
        let t0 = clock::now();
        breaker.on_failure(t0);
        assert!(!breaker.admit(t0));
        let probe_time = t0 + cfg.cooldown;
        assert!(breaker.admit(probe_time));
        breaker.on_failure(probe_time);
        assert!(!breaker.admit(probe_time), "failed probe must re-eject");
        assert_eq!(breaker.state(probe_time), ReplicaState::Ejected);
        // And the next cool-down allows another probe.
        assert!(breaker.admit(probe_time + cfg.cooldown));
    }
}
