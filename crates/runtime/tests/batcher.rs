//! Micro-batcher behaviour tests against a mock engine: tail-batch
//! flushing, submission-order results under out-of-order worker
//! completion, idle shutdown, and shutdown with in-flight requests.

use nshd_core::PipelineError;
use nshd_runtime::{BatchEngine, InferenceRuntime, RuntimeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Echoes request ids through an affine map, sleeping per chunk by the
/// largest requested delay so tests can force worker completion order.
struct MockEngine {
    batch_sizes: Mutex<Vec<usize>>,
    finish_calls: AtomicUsize,
}

impl MockEngine {
    fn new() -> Arc<Self> {
        Arc::new(MockEngine {
            batch_sizes: Mutex::new(Vec::new()),
            finish_calls: AtomicUsize::new(0),
        })
    }

    fn batch_sizes(&self) -> Vec<usize> {
        self.batch_sizes.lock().unwrap().clone()
    }
}

impl BatchEngine for MockEngine {
    /// `(id, delay_ms)` — the delay stalls whichever worker gets it.
    type Input = (u64, u64);
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), chunk: &[(u64, u64)]) -> Result<Vec<u64>, PipelineError> {
        let delay = chunk.iter().map(|&(_, d)| d).max().unwrap_or(0);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        // Poisoned ids simulate a malformed request rejected mid-batch.
        if chunk.iter().any(|&(id, _)| id == POISON) {
            return Err(PipelineError::EmptyBatch);
        }
        Ok(chunk.iter().map(|&(id, _)| id).collect())
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        self.batch_sizes.lock().unwrap().push(partials.len());
        self.finish_calls.fetch_add(1, Ordering::SeqCst);
        Ok(partials.into_iter().map(|id| id * 3 + 7).collect())
    }
}

const WAIT: Duration = Duration::from_secs(20);

/// Sentinel id the mock engine rejects, failing its whole batch.
const POISON: u64 = u64::MAX;

#[test]
fn tail_batch_flushes_on_deadline() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 1, max_batch: 64, max_wait: Duration::from_millis(20) },
    )
    .unwrap();
    // Far fewer requests than max_batch: only the deadline can flush.
    let started = Instant::now();
    let handles: Vec<_> = (0..3u64).map(|id| runtime.submit((id, 0)).unwrap()).collect();
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait_timeout(WAIT).ready(), Some(Ok(id as u64 * 3 + 7)), "request {id}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "tail batch did not flush promptly: {:?}",
        started.elapsed()
    );
    let sizes = engine.batch_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 3);
    assert!(sizes.iter().all(|&s| s < 64), "deadline flush must not wait for a full batch");
    let metrics = runtime.shutdown();
    assert_eq!(metrics.requests, 3);
    assert!(metrics.p50_us > 0.0);
}

#[test]
fn results_follow_submission_order_despite_out_of_order_workers() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 4, max_batch: 16, max_wait: Duration::from_millis(100) },
    )
    .unwrap();
    // The first chunk of the batch (lowest ids) is the slowest, so the
    // later chunks complete first; reassembly must still route result
    // `id*3+7` to the handle that submitted `id`.
    let handles: Vec<_> =
        (0..16u64).map(|id| runtime.submit((id, if id < 4 { 60 } else { 0 })).unwrap()).collect();
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait_timeout(WAIT).ready(), Some(Ok(id as u64 * 3 + 7)), "request {id}");
    }
    let metrics = runtime.shutdown();
    assert_eq!(metrics.requests, 16);
    assert!(!metrics.batch_histogram.is_empty());
}

#[test]
fn zero_request_idle_shutdown() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(engine.clone(), RuntimeConfig::default()).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let metrics = runtime.shutdown(); // must not hang
    assert_eq!(metrics.requests, 0);
    assert_eq!(metrics.batches, 0);
    assert_eq!(engine.finish_calls.load(Ordering::SeqCst), 0);
    assert_eq!(metrics.requests_per_sec, 0.0);
}

#[test]
fn shutdown_with_in_flight_requests_answers_everything() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 2, max_batch: 4, max_wait: Duration::from_millis(50) },
    )
    .unwrap();
    // Slow batches guarantee requests are still queued or executing
    // when shutdown starts.
    let handles: Vec<_> = (0..12u64).map(|id| runtime.submit((id, 15)).unwrap()).collect();
    let metrics = runtime.shutdown(); // blocks until the queue drains
    assert_eq!(metrics.requests, 12, "shutdown dropped in-flight requests");
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(
            h.wait_timeout(WAIT).ready(),
            Some(Ok(id as u64 * 3 + 7)),
            "request {id} lost its reply during shutdown"
        );
    }
}

#[test]
fn max_batch_bounds_every_executed_batch() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 2, max_batch: 8, max_wait: Duration::from_millis(20) },
    )
    .unwrap();
    let handles: Vec<_> = (0..40u64).map(|id| runtime.submit((id, 0)).unwrap()).collect();
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait_timeout(WAIT).ready(), Some(Ok(id as u64 * 3 + 7)));
    }
    let sizes = engine.batch_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 40);
    assert!(sizes.iter().all(|&s| s <= 8), "batch exceeded max_batch: {sizes:?}");
    let metrics = runtime.shutdown();
    assert_eq!(metrics.requests, 40);
    assert!(metrics.requests_per_sec > 0.0);
    assert_eq!(metrics.batch_histogram.iter().map(|&(s, c)| s as u64 * c).sum::<u64>(), 40);
}

#[test]
fn drop_without_shutdown_still_drains() {
    let engine = MockEngine::new();
    let handles: Vec<_> = {
        let runtime = InferenceRuntime::new(
            engine.clone(),
            RuntimeConfig { workers: 2, max_batch: 4, max_wait: Duration::from_millis(30) },
        )
        .unwrap();
        (0..6u64).map(|id| runtime.submit((id, 10)).unwrap()).collect()
        // `runtime` dropped here with requests possibly still queued.
    };
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait_timeout(WAIT).ready(), Some(Ok(id as u64 * 3 + 7)), "request {id}");
    }
}

#[test]
fn misconfiguration_is_rejected_before_any_thread_spawns() {
    let engine = MockEngine::new();
    let Err(err) = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 0, max_batch: 8, max_wait: Duration::from_millis(1) },
    ) else {
        panic!("zero workers accepted");
    };
    assert!(err.to_string().contains("worker"), "{err}");
    let Err(err) = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 2, max_batch: 0, max_wait: Duration::from_millis(1) },
    ) else {
        panic!("zero max_batch accepted");
    };
    assert!(err.to_string().contains("batch"), "{err}");
    // Neither rejected construction ran the engine.
    assert_eq!(engine.finish_calls.load(Ordering::SeqCst), 0);
}

/// An engine whose static verification fails: construction must refuse
/// to serve it (and must do so before spawning any thread).
struct BrokenEngine;

impl BatchEngine for BrokenEngine {
    type Input = ();
    type Partial = ();
    type Output = ();
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), _chunk: &[()]) -> Result<Vec<()>, PipelineError> {
        unreachable!("a rejected engine must never run");
    }

    fn finish(&self, _snapshot: &(), _partials: Vec<()>) -> Result<Vec<()>, PipelineError> {
        unreachable!("a rejected engine must never run");
    }

    fn verify(&self) -> Result<(), PipelineError> {
        Err(PipelineError::Runtime { stage: "verify", detail: "deliberately broken".into() })
    }
}

#[test]
fn engine_failing_verification_is_rejected_at_construction() {
    let Err(err) = InferenceRuntime::new(Arc::new(BrokenEngine), RuntimeConfig::default()) else {
        panic!("broken engine accepted");
    };
    assert!(err.to_string().contains("deliberately broken"), "{err}");
}

#[test]
fn a_failed_batch_fails_only_its_own_handles() {
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine.clone(),
        RuntimeConfig { workers: 2, max_batch: 4, max_wait: Duration::from_millis(5) },
    )
    .unwrap();
    // One poisoned request: its whole batch errors, every handle in
    // that batch gets the engine's error rather than hanging.
    let bad: Vec<_> = (0..4)
        .map(|i| {
            let id = if i == 2 { POISON } else { i };
            runtime.submit((id, 0)).unwrap()
        })
        .collect();
    for h in bad {
        assert!(h.wait_timeout(WAIT).ready().expect("handle must resolve").is_err());
    }
    // The runtime keeps serving after a failed batch.
    let good = runtime.submit((5, 0)).unwrap();
    assert_eq!(good.wait_timeout(WAIT).ready(), Some(Ok(5 * 3 + 7)));
    runtime.shutdown();
}

#[test]
fn wait_timeout_distinguishes_pending_from_ready() {
    use nshd_runtime::WaitOutcome;
    let engine = MockEngine::new();
    let runtime = InferenceRuntime::new(
        engine,
        RuntimeConfig { workers: 1, max_batch: 1, max_wait: Duration::from_millis(1) },
    )
    .unwrap();
    // A 200 ms extract keeps the request in flight past the short wait.
    let h = runtime.submit((1, 200)).unwrap();
    assert!(
        matches!(h.wait_timeout(Duration::from_millis(5)), WaitOutcome::Timeout),
        "an in-flight request must report Timeout, not a dead runtime"
    );
    // The same handle can keep waiting and still observe the result.
    assert_eq!(h.wait_timeout(WAIT).ready(), Some(Ok(10)));
    runtime.shutdown();
}

/// An engine that panics in extract: with one worker the extract stage
/// runs on the collector thread, so the panic kills the collector and
/// every pending reply sender is dropped without an answer.
struct PanickingEngine;

impl BatchEngine for PanickingEngine {
    type Input = u64;
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), _chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
        panic!("injected collector death");
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        Ok(partials)
    }
}

#[test]
fn dead_runtime_reports_worker_gone_not_timeout() {
    use nshd_runtime::WaitOutcome;
    let runtime = InferenceRuntime::new(
        Arc::new(PanickingEngine),
        RuntimeConfig { workers: 1, max_batch: 4, max_wait: Duration::from_millis(1) },
    )
    .unwrap();
    let h = runtime.submit(1).unwrap();
    // The collector dies executing the batch; the handle must resolve
    // to WorkerGone (a typed error), never hang and never read as a
    // mere timeout.
    let outcome = h.wait_timeout(WAIT);
    let WaitOutcome::WorkerGone(err) = outcome else {
        panic!("expected WorkerGone, got {outcome:?}");
    };
    assert!(err.to_string().contains("without replying"), "{err}");
    drop(runtime); // drop (join) must not hang on the dead collector
}
