//! Chaos tests for the fault-tolerant serving tier: replicas that fail,
//! stall, panic or degrade mid-stream, with live traffic asserting that
//! every request resolves (success or typed error, never a hang), that
//! circuit breakers eject and re-admit replicas, that overload sheds
//! with a typed error, and that surviving replicas' predictions stay
//! bit-identical to a fault-free run.

use nshd_core::{NshdConfig, NshdEngine, NshdModel, PipelineError};
use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
use nshd_hdc::{FaultPlan, FaultScenario};
use nshd_nn::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential};
use nshd_runtime::{
    BatchEngine, BreakerConfig, ChaosEngine, ChaosMode, ClusterConfig, ReplicaSet, ReplicaState,
    RetryPolicy, RuntimeConfig,
};
use nshd_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Deterministic toy engine: `id -> id * 3 + 7`, counting how many
/// requests it actually served so tests can tell replicas apart.
struct CountingEngine {
    served: AtomicU64,
}

impl CountingEngine {
    fn new() -> Arc<Self> {
        Arc::new(CountingEngine { served: AtomicU64::new(0) })
    }
}

impl BatchEngine for CountingEngine {
    type Input = u64;
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
        Ok(chunk.to_vec())
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        self.served.fetch_add(partials.len() as u64, Ordering::SeqCst);
        Ok(partials.into_iter().map(|id| id * 3 + 7).collect())
    }
}

/// An engine that panics in extract, killing its replica's collector
/// thread — the harshest fault: the runtime never answers the request.
struct PanickingEngine;

impl BatchEngine for PanickingEngine {
    type Input = u64;
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), _chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
        panic!("chaos: injected collector death");
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        Ok(partials)
    }
}

fn fast_cluster_config() -> ClusterConfig {
    ClusterConfig {
        runtime: RuntimeConfig { workers: 1, max_batch: 4, max_wait: Duration::from_millis(1) },
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(40) },
        max_inflight: 0,
    }
}

#[test]
fn failing_replica_is_ejected_and_every_request_resolves() {
    let healthy = CountingEngine::new();
    let (victim, switch) = ChaosEngine::new(CountingEngine::new());
    let replicas = vec![Arc::new(ChaosEngine::passthrough(healthy.clone())), Arc::new(victim)];
    let set = ReplicaSet::new(replicas, fast_cluster_config()).unwrap();

    // First half fault-free, then the victim starts failing mid-stream.
    for id in 0..20u64 {
        if id == 10 {
            switch.set(ChaosMode::Fail);
        }
        let reply = set.predict(id).unwrap_or_else(|e| panic!("request {id} failed: {e}"));
        assert_eq!(reply.value, id * 3 + 7, "request {id} got the wrong answer");
    }
    assert!(switch.injected() > 0, "the fault was never exercised");
    assert_eq!(
        set.replica_state(1),
        ReplicaState::Ejected,
        "two consecutive failures must open the victim's breaker"
    );
    assert_eq!(set.replica_state(0), ReplicaState::Serving);

    let metrics = set.shutdown();
    assert!(metrics.router.retries > 0, "failures must surface as retries");
    assert_eq!(metrics.router.requests, 20, "router must account every admitted request");
}

#[test]
fn healed_replica_is_probed_and_readmitted() {
    let (victim, switch) = ChaosEngine::new(CountingEngine::new());
    let victim = Arc::new(victim);
    let replicas = vec![Arc::new(ChaosEngine::passthrough(CountingEngine::new())), victim];
    let set = ReplicaSet::new(replicas, fast_cluster_config()).unwrap();

    switch.set(ChaosMode::Fail);
    for id in 0..8u64 {
        set.predict(id).expect("the healthy replica must cover the failures");
    }
    assert_eq!(set.replica_state(1), ReplicaState::Ejected);

    // Heal the replica and let the breaker cool down: the next routed
    // request becomes the half-open probe and re-admits it.
    switch.set(ChaosMode::Healthy);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(set.replica_state(1), ReplicaState::Probing);
    let mut served_by_healed = 0;
    for id in 100..140u64 {
        let reply = set.predict(id).expect("post-heal traffic must succeed");
        assert_eq!(reply.value, id * 3 + 7);
        if reply.replica == 1 {
            served_by_healed += 1;
        }
    }
    assert!(served_by_healed > 0, "a healed replica must take traffic again");
    assert_eq!(set.replica_state(1), ReplicaState::Serving);
    set.shutdown();
}

#[test]
fn killed_collector_fails_over_without_hanging() {
    // Replica 0's collector thread dies on the first batch (engine
    // panic). Every request must still resolve through replica 1 —
    // WorkerGone is a retryable fault, not a hang and not a timeout.
    let replicas: Vec<Arc<dyn_engine::Either>> = vec![
        Arc::new(dyn_engine::Either::Dead(PanickingEngine)),
        Arc::new(dyn_engine::Either::Alive(CountingEngine::new())),
    ];
    let set = ReplicaSet::new(replicas, fast_cluster_config()).unwrap();
    let mut failovers = 0;
    for id in 0..12u64 {
        let reply = set.predict(id).unwrap_or_else(|e| panic!("request {id} failed: {e}"));
        assert_eq!(reply.value, id * 3 + 7);
        assert_eq!(reply.replica, 1, "only replica 1 can answer");
        if reply.attempts > 1 {
            failovers += 1;
        }
    }
    assert!(failovers > 0, "the dead replica was never even tried");
    let metrics = set.shutdown();
    assert!(metrics.router.retries > 0);
}

/// A two-variant engine so a dead and a live replica can share one
/// engine type in a `ReplicaSet` (which is homogeneous over `E`).
mod dyn_engine {
    use super::*;

    pub enum Either {
        Dead(PanickingEngine),
        Alive(Arc<CountingEngine>),
    }

    impl BatchEngine for Either {
        type Input = u64;
        type Partial = u64;
        type Output = u64;
        type Snapshot = ();

        fn snapshot(&self) -> Arc<()> {
            Arc::new(())
        }

        fn extract(&self, _snapshot: &(), chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
            match self {
                Either::Dead(e) => e.extract(&(), chunk),
                Either::Alive(e) => e.extract(&(), chunk),
            }
        }

        fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
            match self {
                Either::Dead(e) => e.finish(&(), partials),
                Either::Alive(e) => e.finish(&(), partials),
            }
        }
    }
}

#[test]
fn overload_sheds_with_typed_error() {
    // One replica, stalled: with an admission cap of 1 and clients
    // released together, exactly one request is in flight and the rest
    // must shed fast with the typed Overloaded error.
    let (engine, switch) = ChaosEngine::new(CountingEngine::new());
    switch.set(ChaosMode::Stall(Duration::from_millis(400)));
    let mut config = fast_cluster_config();
    config.max_inflight = 1;
    config.retry.max_attempts = 1;
    let set = ReplicaSet::new(vec![Arc::new(engine)], config).unwrap();

    let clients = 4;
    let barrier = Barrier::new(clients);
    let outcomes: Vec<Result<u64, PipelineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients as u64)
            .map(|id| {
                let set = &set;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    if id > 0 {
                        // Give client 0 a head start into the stall so
                        // the others deterministically find the slot
                        // taken.
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    set.predict(id).map(|r| r.value)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    let succeeded = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed =
        outcomes.iter().filter(|o| matches!(o, Err(PipelineError::Overloaded { .. }))).count();
    assert!(succeeded >= 1, "the admitted request must finish: {outcomes:?}");
    assert!(shed >= 1, "overload must shed with a typed error: {outcomes:?}");
    assert_eq!(succeeded + shed, clients, "every outcome is served or shed: {outcomes:?}");

    let metrics = set.shutdown();
    assert_eq!(metrics.router.shed as usize, shed);
}

#[test]
fn drain_finishes_in_flight_work_and_last_drain_makes_cluster_unavailable() {
    let a = CountingEngine::new();
    let b = CountingEngine::new();
    let replicas = vec![
        Arc::new(ChaosEngine::passthrough(a.clone())),
        Arc::new(ChaosEngine::passthrough(b.clone())),
    ];
    let mut config = fast_cluster_config();
    config.retry.max_attempts = 2;
    let set = ReplicaSet::new(replicas, config).unwrap();
    for id in 0..10u64 {
        set.predict(id).expect("two healthy replicas");
    }

    let drained = set.drain(0).expect("first drain succeeds");
    assert_eq!(set.replica_state(0), ReplicaState::Removed);
    assert!(set.drain(0).is_err(), "double drain must be rejected");

    // The survivor carries all subsequent traffic.
    for id in 10..20u64 {
        let reply = set.predict(id).expect("replica 1 still serves");
        assert_eq!(reply.replica, 1);
    }
    set.drain(1).expect("second drain succeeds");
    let err = set.predict(99).expect_err("no replicas left");
    assert!(
        matches!(err, PipelineError::Unavailable { .. }),
        "an empty cluster must report Unavailable, got: {err}"
    );

    // The drained replicas' history survives in the rollup.
    let metrics = set.metrics();
    assert_eq!(
        metrics.rollup.requests,
        drained.requests + b.served.load(Ordering::SeqCst),
        "rollup must keep drained replicas' requests"
    );
    assert_eq!(metrics.rollup.requests, 20);
    let json = metrics.to_json();
    assert!(json.contains("\"state\":\"removed\""), "{json}");
}

fn tiny_nshd_model() -> (NshdModel, ImageDataset) {
    let (mut train, mut test) = SynthSpec::synth10(33).with_sizes(40, 16).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(4);
    let features = Sequential::new()
        .with(Conv2d::new(3, 4, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, &mut rng));
    let teacher = Model {
        name: "tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    };
    let cfg = NshdConfig::new(3)
        .with_hv_dim(512)
        .with_manifold_features(24)
        .with_retrain_epochs(1)
        .with_seed(6);
    (NshdModel::train(teacher, &train, cfg), test)
}

#[test]
fn survivors_stay_bit_exact_while_a_degraded_replica_serves() {
    // Replica 0 is the fault-free snapshot; replica 1 has its
    // associative memory corrupted by a seeded fault scenario. Every
    // reply served by the *healthy* replica must be bit-identical to
    // the fault-free baseline — degradation must never leak across
    // replica boundaries.
    let (model, test) = tiny_nshd_model();
    let engine = NshdEngine::new(&model).expect("trained model must verify");
    let scenario =
        FaultScenario::new().with(FaultPlan::new(9, 0.4), 1).with(FaultPlan::new(10, 0.4), 2);
    let (degraded, report) = engine.degraded(&scenario);
    assert!(report.faults > 0, "the scenario must actually corrupt the replica");

    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let expected: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();

    let mut config = fast_cluster_config();
    config.runtime.max_batch = 8;
    let set = ReplicaSet::new(vec![Arc::new(engine), Arc::new(degraded)], config).unwrap();
    let mut healthy_replies = 0;
    for (i, img) in images.iter().enumerate() {
        let reply = set.predict(img.clone()).expect("both replicas are serving");
        assert!(reply.value < 10, "prediction out of range");
        if reply.replica == 0 {
            assert_eq!(
                reply.value, expected[i],
                "healthy replica diverged from the fault-free baseline on sample {i}"
            );
            healthy_replies += 1;
        }
    }
    assert!(healthy_replies > 0, "round-robin must route some traffic to the healthy replica");
    set.shutdown();
}
