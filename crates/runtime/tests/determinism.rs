//! End-to-end determinism: for a seeded trained NSHD model, predictions
//! served through the batched runtime must exactly match per-sample
//! `NshdModel::predict`, for any worker count and batch size.

use nshd_core::{NshdConfig, NshdEngine, NshdModel};
use nshd_data::{normalize_pair, ImageDataset, SynthSpec};
use nshd_nn::{ActKind, Activation, Conv2d, Flatten, Linear, MaxPool2d, Model, Sequential};
use nshd_runtime::{InferenceRuntime, RuntimeConfig};
use nshd_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn trained_model() -> (NshdModel, ImageDataset) {
    let (mut train, mut test) = SynthSpec::synth10(33).with_sizes(40, 24).generate();
    normalize_pair(&mut train, &mut test);
    let mut rng = Rng::new(4);
    let features = Sequential::new()
        .with(Conv2d::new(3, 4, 3, 1, 1, &mut rng))
        .with(Activation::new(ActKind::Relu))
        .with(MaxPool2d::new(2));
    let classifier =
        Sequential::new().with(Flatten::new()).with(Linear::new(4 * 16 * 16, 10, &mut rng));
    let teacher = Model {
        name: "tiny".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes: 10,
    };
    let cfg = NshdConfig::new(3)
        .with_hv_dim(512)
        .with_manifold_features(24)
        .with_retrain_epochs(1)
        .with_seed(6);
    (NshdModel::train(teacher, &train, cfg), test)
}

#[test]
fn batched_runtime_matches_sequential_predict_exactly() {
    let (model, test) = trained_model();
    let engine = Arc::new(NshdEngine::new(&model).expect("trained model must verify"));
    let images: Vec<Tensor> = (0..test.len()).map(|i| test.sample(i).0).collect();
    let expected: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();

    for (workers, max_batch) in [(1usize, 1usize), (1, 8), (2, 4), (4, 16)] {
        let runtime = InferenceRuntime::new(
            engine.clone(),
            RuntimeConfig { workers, max_batch, max_wait: Duration::from_millis(5) },
        )
        .expect("verified engine must serve");
        let handles: Vec<_> =
            images.iter().map(|img| runtime.submit(img.clone()).unwrap()).collect();
        let served: Vec<usize> =
            handles.into_iter().map(|h| h.wait().expect("batch must succeed")).collect();
        assert_eq!(
            served, expected,
            "workers={workers} max_batch={max_batch}: batched predictions diverged"
        );
        let metrics = runtime.shutdown();
        assert_eq!(metrics.requests as usize, images.len());
        assert!(metrics.p99_us >= metrics.p50_us);
    }
}
