//! Serving-runtime observability: every executed batch opens a `request`
//! span, worker-side extract spans re-root under it (cross-thread
//! context propagation), and queue-wait / execute summaries populate.

use nshd_core::PipelineError;
use nshd_obs::Recorder;
use nshd_runtime::{BatchEngine, InferenceRuntime, RuntimeConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serialises tests that install the process-global recorder.
static GLOBAL_RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// A mock engine that opens an `extract` span in its extract stage —
/// the same shape `NshdEngine` produces — so the test can assert the
/// span lands under the batcher's `request` span even when extract
/// runs on a pool worker thread.
struct SpanningEngine;

impl BatchEngine for SpanningEngine {
    type Input = u64;
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
        let _sp = nshd_obs::span("extract");
        std::thread::sleep(Duration::from_millis(2));
        Ok(chunk.to_vec())
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        let _sp = nshd_obs::span("score");
        Ok(partials.into_iter().map(|id| id + 1).collect())
    }
}

fn serve(workers: usize, requests: u64) -> nshd_runtime::RuntimeMetrics {
    let runtime = InferenceRuntime::new(
        Arc::new(SpanningEngine),
        RuntimeConfig { workers, max_batch: 8, max_wait: Duration::from_millis(10) },
    )
    .unwrap();
    let handles: Vec<_> = (0..requests).map(|id| runtime.submit(id).unwrap()).collect();
    for (id, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait_timeout(Duration::from_secs(20)).ready(), Some(Ok(id as u64 + 1)));
    }
    runtime.shutdown()
}

#[test]
fn batches_trace_request_spans_with_worker_extract_nested() {
    let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
    let recorder = Recorder::new();
    let previous = nshd_obs::install(recorder.clone());

    let metrics = serve(4, 16);
    nshd_obs::install(previous);

    assert_eq!(metrics.requests, 16);
    // Queue-wait and execute summaries are accounted per batch.
    assert!(metrics.execute.max_us > 0.0, "{:?}", metrics.execute);
    assert!(metrics.queue_wait.p99_us <= metrics.p99_us, "waits are part of latency");
    assert!(metrics.p50_us <= metrics.p95_us && metrics.p95_us <= metrics.p99_us);

    let stats = recorder.span_stats();
    let request = stats.get("request").expect("per-batch request span recorded");
    assert_eq!(request.count, metrics.batches);
    // Worker-side extract spans re-rooted under the batch's request
    // span — not recorded as orphan roots on the worker threads.
    let extract = stats.get("request/extract").expect("extract nested under request");
    assert!(extract.count >= metrics.batches, "one extract span per chunk");
    assert!(stats.contains_key("request/score"), "finish stage nested too");
    assert!(!stats.contains_key("extract"), "no orphan extract roots: {:?}", stats.keys());

    let report = recorder.report();
    let node = report.find("request/extract").expect("report resolves the nested path");
    assert!(node.stats.total_nanos > 0);
}

#[test]
fn serving_without_a_recorder_traces_nothing() {
    let _guard = GLOBAL_RECORDER_LOCK.lock().unwrap();
    let recorder = Recorder::new();
    let previous = nshd_obs::install(nshd_obs::Recorder::disabled());

    let metrics = serve(2, 6);
    nshd_obs::install(previous);

    // Serving statistics still accumulate (they are runtime-owned) ...
    assert_eq!(metrics.requests, 6);
    // ... but no spans were recorded anywhere.
    assert!(recorder.span_stats().is_empty());
}
