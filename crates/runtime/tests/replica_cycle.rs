//! Repeated drain → readmit cycles on a live `ReplicaSet`: serving
//! history must survive every retirement (bucket-exact
//! `Histogram::merge_from` into the retired rollup), the breaker must
//! come back `Serving` after each readmit, and a readmitted slot must
//! take traffic again.

use nshd_core::PipelineError;
use nshd_runtime::{
    BatchEngine, BreakerConfig, ClusterConfig, ReplicaSet, ReplicaState, RetryPolicy, RuntimeConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic toy engine (`id -> id * 3 + 7`) counting what it
/// actually served, so tests can attribute traffic to an engine
/// instance across readmissions.
struct CountingEngine {
    served: AtomicU64,
}

impl CountingEngine {
    fn new() -> Arc<Self> {
        Arc::new(CountingEngine { served: AtomicU64::new(0) })
    }
}

impl BatchEngine for CountingEngine {
    type Input = u64;
    type Partial = u64;
    type Output = u64;
    type Snapshot = ();

    fn snapshot(&self) -> Arc<()> {
        Arc::new(())
    }

    fn extract(&self, _snapshot: &(), chunk: &[u64]) -> Result<Vec<u64>, PipelineError> {
        Ok(chunk.to_vec())
    }

    fn finish(&self, _snapshot: &(), partials: Vec<u64>) -> Result<Vec<u64>, PipelineError> {
        self.served.fetch_add(partials.len() as u64, Ordering::SeqCst);
        Ok(partials.into_iter().map(|id| id * 3 + 7).collect())
    }
}

fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        runtime: RuntimeConfig { workers: 1, max_batch: 4, max_wait: Duration::from_millis(1) },
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(40) },
        max_inflight: 0,
    }
}

#[test]
fn drain_readmit_cycles_keep_rollup_bucket_exact() {
    let a = CountingEngine::new();
    let b = CountingEngine::new();
    let set = ReplicaSet::new(vec![a.clone(), b.clone()], cluster_config()).unwrap();
    let mut total = 0u64;

    for cycle in 0..3 {
        for id in 0..10u64 {
            let reply = set.predict(id).unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
            assert_eq!(reply.value, id * 3 + 7);
            total += 1;
        }

        // The slot's engine stays reachable for retrain-and-readmit.
        let engine = set.engine(0).expect("engine accessor");
        assert!(Arc::ptr_eq(&engine, &a), "slot 0 must hand back the engine it serves");

        // A live slot must be drained before it can be readmitted.
        let err = set.readmit(0, engine.clone()).expect_err("readmit of a live slot");
        assert!(matches!(err, PipelineError::Runtime { stage: "swap", .. }), "got: {err}");

        set.drain(0).expect("drain succeeds");
        assert_eq!(set.replica_state(0), ReplicaState::Removed);

        // The survivor carries all traffic during the retirement.
        for id in 100..105u64 {
            let reply = set.predict(id).expect("survivor serves");
            assert_eq!(reply.replica, 1, "only replica 1 is admitted mid-retirement");
            total += 1;
        }

        set.readmit(0, engine).expect("readmit succeeds");
        assert_eq!(
            set.replica_state(0),
            ReplicaState::Serving,
            "a readmitted replica's breaker must reset to Serving"
        );
    }

    // After the final readmission, slot 0 takes traffic again.
    let before = a.served.load(Ordering::SeqCst);
    let mut by_zero = 0;
    for id in 200..210u64 {
        let reply = set.predict(id).expect("both replicas serving");
        if reply.replica == 0 {
            by_zero += 1;
        }
        total += 1;
    }
    assert!(by_zero > 0, "round-robin must route to the readmitted replica");
    assert!(a.served.load(Ordering::SeqCst) > before, "the readmitted engine must serve");

    // Three retirements later, nothing leaked: the router accounted
    // every admitted request and the rollup (retired history merged
    // with live replicas) agrees exactly — including the batch-size
    // histogram, whose buckets must re-add across merges.
    let metrics = set.metrics();
    assert_eq!(metrics.router.requests, total);
    assert_eq!(
        metrics.rollup.requests, total,
        "drained replicas' requests must survive in the rollup"
    );
    let hist_requests: u64 =
        metrics.rollup.batch_histogram.iter().map(|&(size, count)| size as u64 * count).sum();
    assert_eq!(
        hist_requests, total,
        "the merged batch histogram must stay bucket-exact across retirements"
    );
    assert_eq!(
        a.served.load(Ordering::SeqCst) + b.served.load(Ordering::SeqCst),
        total,
        "engine-side accounting must agree with the rollup"
    );
    set.shutdown();
}

#[test]
fn hot_swap_replaces_engine_mid_traffic() {
    let original = CountingEngine::new();
    let spare = CountingEngine::new();
    let set =
        ReplicaSet::new(vec![original.clone(), CountingEngine::new()], cluster_config()).unwrap();
    for id in 0..8u64 {
        set.predict(id).expect("warm-up traffic");
    }

    let drained = set.hot_swap(0, spare.clone()).expect("hot swap succeeds");
    assert!(drained.requests > 0, "the drained metrics must carry the slot's history");
    assert_eq!(set.replica_state(0), ReplicaState::Serving);
    assert!(Arc::ptr_eq(&set.engine(0).expect("accessor"), &spare));

    let before_original = original.served.load(Ordering::SeqCst);
    for id in 100..120u64 {
        let reply = set.predict(id).expect("post-swap traffic");
        assert_eq!(reply.value, id * 3 + 7);
    }
    assert_eq!(
        original.served.load(Ordering::SeqCst),
        before_original,
        "the swapped-out engine must never see post-swap traffic"
    );
    assert!(spare.served.load(Ordering::SeqCst) > 0, "the swapped-in engine must serve");

    let metrics = set.shutdown();
    assert_eq!(metrics.rollup.requests, 28, "history spans both engines' tenures");
}
