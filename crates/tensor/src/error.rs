//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error raised by fallible tensor operations.
///
/// Most tensor methods in this crate panic on programmer errors (shape
/// mismatches discovered at call sites that are statically avoidable), but
/// operations whose validity depends on runtime data — parsing, reshaping to
/// user-supplied dimensions, building tensors from external buffers — return
/// `Result<_, TensorError>` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a requested shape does not match the
    /// number of elements in the underlying buffer.
    ShapeMismatch {
        /// Number of elements the buffer actually holds.
        expected: usize,
        /// Number of elements the requested shape implies.
        got: usize,
    },
    /// Two tensors that were required to have identical shapes did not.
    IncompatibleShapes {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A dimension index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An operation that requires a non-empty tensor received an empty one.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape implies {got} elements but buffer holds {expected}")
            }
            TensorError::IncompatibleShapes { lhs, rhs } => {
                write!(f, "incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch { expected: 4, got: 6 };
        assert_eq!(e.to_string(), "shape implies 6 elements but buffer holds 4");
        let e = TensorError::IncompatibleShapes { lhs: vec![2, 3], rhs: vec![3, 2] };
        assert!(e.to_string().contains("[2, 3]"));
        let e = TensorError::AxisOutOfRange { axis: 5, rank: 2 };
        assert!(e.to_string().contains("axis 5"));
        assert!(TensorError::EmptyTensor.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
