//! im2col / col2im lowering for convolution.
//!
//! Convolution of a `C×H×W` input with `K` kernels of size `C×R×S` is
//! expressed as a GEMM between the `K×(C·R·S)` weight matrix and the
//! `(C·R·S)×(H'·W')` patch matrix produced by [`im2col`]. The adjoint
//! operation [`col2im`] scatters patch-space gradients back to image space
//! and is used by convolution's backward pass.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution over a single image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input.
    pub fn out_height(&self) -> usize {
        out_extent(self.height, self.kernel_h, self.stride, self.padding)
    }

    /// Output width after convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input.
    pub fn out_width(&self) -> usize {
        out_extent(self.width, self.kernel_w, self.stride, self.padding)
    }

    /// Rows of the patch matrix: `channels * kernel_h * kernel_w`.
    pub fn patch_len(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the patch matrix: `out_height() * out_width()`.
    pub fn out_positions(&self) -> usize {
        self.out_height() * self.out_width()
    }
}

fn out_extent(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    assert!(padded >= kernel, "kernel {kernel} larger than padded input {padded}");
    assert!(stride > 0, "stride must be positive");
    (padded - kernel) / stride + 1
}

/// Unfolds one `C×H×W` image (given as a flat slice) into the
/// `patch_len × out_positions` patch matrix.
///
/// Out-of-image taps read as zero (zero padding).
///
/// # Panics
///
/// Panics if `image.len()` does not equal `C·H·W`.
pub fn im2col(image: &[f32], g: &ConvGeometry) -> Tensor {
    assert_eq!(
        image.len(),
        g.channels * g.height * g.width,
        "image length does not match geometry"
    );
    let (oh, ow) = (g.out_height(), g.out_width());
    let cols = oh * ow;
    let mut sp = nshd_obs::span("im2col");
    sp.add_bytes(4 * (image.len() + g.patch_len() * cols) as u64);
    let mut out = Tensor::zeros([g.patch_len(), cols]);
    let buf = out.as_mut_slice();
    let mut row = 0usize;
    for c in 0..g.channels {
        let plane = &image[c * g.height * g.width..(c + 1) * g.height * g.width];
        for kh in 0..g.kernel_h {
            for kw in 0..g.kernel_w {
                let dst = &mut buf[row * cols..(row + 1) * cols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.padding as isize;
                    if iy < 0 || iy as usize >= g.height {
                        col += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.padding as isize;
                        if ix >= 0 && (ix as usize) < g.width {
                            dst[col] = plane[iy * g.width + ix as usize];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    out
}

/// Folds a `patch_len × out_positions` gradient matrix back into image
/// space, accumulating overlapping contributions — the adjoint of
/// [`im2col`].
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for the geometry.
pub fn col2im(cols: &Tensor, g: &ConvGeometry) -> Vec<f32> {
    let (oh, ow) = (g.out_height(), g.out_width());
    assert_eq!(
        cols.dims(),
        &[g.patch_len(), oh * ow],
        "patch matrix shape does not match geometry"
    );
    let mut sp = nshd_obs::span("col2im");
    sp.add_bytes(4 * (cols.len() + g.channels * g.height * g.width) as u64);
    let mut image = vec![0.0f32; g.channels * g.height * g.width];
    let buf = cols.as_slice();
    let ncols = oh * ow;
    let mut row = 0usize;
    for c in 0..g.channels {
        let plane = &mut image[c * g.height * g.width..(c + 1) * g.height * g.width];
        for kh in 0..g.kernel_h {
            for kw in 0..g.kernel_w {
                let src = &buf[row * ncols..(row + 1) * ncols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.padding as isize;
                    if iy < 0 || iy as usize >= g.height {
                        col += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.padding as isize;
                        if ix >= 0 && (ix as usize) < g.width {
                            plane[iy * g.width + ix as usize] += src[col];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            channels: c,
            height: h,
            width: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_extent_formulae() {
        let g = geom(1, 32, 32, 3, 1, 1);
        assert_eq!(g.out_height(), 32);
        assert_eq!(g.out_width(), 32);
        let g = geom(1, 32, 32, 3, 2, 1);
        assert_eq!(g.out_height(), 16);
        let g = geom(1, 5, 5, 5, 1, 0);
        assert_eq!(g.out_positions(), 1);
    }

    #[test]
    fn im2col_1x1_kernel_is_identity_layout() {
        let g = geom(2, 2, 2, 1, 1, 0);
        let img: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let m = im2col(&img, &g);
        assert_eq!(m.dims(), &[2, 4]);
        assert_eq!(m.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_expected_patch() {
        // 1 channel, 3x3 image, 2x2 kernel, stride 1, no padding.
        let g = geom(1, 3, 3, 2, 1, 0);
        let img: Vec<f32> = (1..=9).map(|x| x as f32).collect();
        let m = im2col(&img, &g);
        assert_eq!(m.dims(), &[4, 4]);
        // First output position (top-left window): 1,2,4,5 down the rows.
        assert_eq!(m.at(&[0, 0]), 1.0);
        assert_eq!(m.at(&[1, 0]), 2.0);
        assert_eq!(m.at(&[2, 0]), 4.0);
        assert_eq!(m.at(&[3, 0]), 5.0);
        // Last output position (bottom-right window): 5,6,8,9.
        assert_eq!(m.at(&[0, 3]), 5.0);
        assert_eq!(m.at(&[3, 3]), 9.0);
    }

    #[test]
    fn padding_reads_zero() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let img = [1.0, 2.0, 3.0, 4.0];
        let m = im2col(&img, &g);
        assert_eq!(m.dims(), &[9, 4]);
        // Top-left output: kernel centred at (0,0); tap (0,0) is padding.
        assert_eq!(m.at(&[0, 0]), 0.0);
        // Centre tap of kernel at the first position is pixel (0,0)=1.
        assert_eq!(m.at(&[4, 0]), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y — the defining
        // property that makes conv backward correct.
        let g = geom(2, 4, 5, 3, 2, 1);
        let n_img = g.channels * g.height * g.width;
        let x: Vec<f32> = (0..n_img).map(|i| (i as f32 * 0.37).sin()).collect();
        let cols_shape = [g.patch_len(), g.out_positions()];
        let y = Tensor::from_fn(cols_shape, |i| (i as f32 * 0.11).cos());
        let ix = im2col(&x, &g);
        let lhs: f32 = ix.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let cy = col2im(&y, &g);
        let rhs: f32 = x.iter().zip(cy.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        geom(1, 2, 2, 5, 1, 0).out_height();
    }
}
