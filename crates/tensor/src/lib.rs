//! # nshd-tensor
//!
//! Dense `f32` tensor math for the NSHD workspace: the substrate that plays
//! the role PyTorch's tensor library plays in the original paper
//! (*Comprehensive Integration of Hyperdimensional Computing with Deep
//! Learning towards Neuro-Symbolic AI*, DAC 2023).
//!
//! The crate provides:
//!
//! - [`Tensor`] — an owned, contiguous, row-major `f32` container with
//!   elementwise ops, reductions, and a numerically-stable softmax;
//! - [`Shape`] — dimension bookkeeping and row-major index arithmetic;
//! - [`matmul`]/[`matmul_bt`]/[`matmul_at`] — cache-blocked GEMM kernels
//!   that convolution lowers onto, row-parallel across the [`par`] worker
//!   set with bit-identical results at any thread count;
//! - [`par`] — std-only structured parallelism (scoped workers honoring
//!   the `NSHD_THREADS` override, deterministic row partitioning);
//! - [`im2col`]/[`col2im`] — the convolution ⇄ GEMM bridge and its adjoint;
//! - [`Rng`] — a deterministic SplitMix64 generator that makes every
//!   experiment in the workspace reproducible from a seed.
//!
//! # Examples
//!
//! ```
//! use nshd_tensor::{matmul, Rng, Tensor};
//!
//! let mut rng = Rng::new(42);
//! let a = Tensor::from_fn([2, 3], |_| rng.normal());
//! let b = Tensor::from_fn([3, 4], |_| rng.normal());
//! let c = matmul(&a, &b);
//! assert_eq!(c.dims(), &[2, 4]);
//! ```

#![warn(missing_docs)]

mod error;
mod im2col;
mod matmul;
mod ops;
pub mod par;
mod rng;
mod shape;
mod tensor;

pub use error::TensorError;
pub use im2col::{col2im, im2col, ConvGeometry};
pub use matmul::{matmul, matmul_at, matmul_bt, matmul_bt_into, matmul_into, matvec, vecmat};
pub use ops::dot;
pub use rng::Rng;
pub use shape::{conv_out_dim, pool_out_dim, Shape};
pub use tensor::Tensor;
