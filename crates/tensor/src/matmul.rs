//! Blocked single-precision matrix multiplication.
//!
//! Convolution in [`nshd-nn`] lowers to GEMM via im2col, so this kernel is
//! the hot path of the entire workspace. The implementation is a classic
//! cache-blocked ikj loop; it is not BLAS, but on a single core with
//! `opt-level >= 2` it sustains a healthy fraction of scalar peak and, more
//! importantly, is simple enough to audit.
//!
//! Large products run **row-parallel** across the [`crate::par`] worker
//! set: the output's rows are split into contiguous chunks and each worker
//! runs the same serial kernel on its chunk. Because every kernel here
//! accumulates each output row independently (the row loop is the
//! outermost loop that partitions work), the per-row summation order is
//! identical at any thread count, and parallel results are **bit-identical**
//! to serial ones — `crates/tensor/tests/determinism.rs` proves it.
//!
//! [`nshd-nn`]: ../../nshd_nn/index.html

use crate::par;
use crate::tensor::Tensor;

/// Cache block edge, chosen so three `BLOCK×BLOCK` f32 tiles fit in L1.
const BLOCK: usize = 64;

/// Drives a row-partitioned GEMM-family kernel: opens the profiling span
/// `name` attributing the f32 traffic of all three operands, then runs
/// `kernel(first_row, rows, chunk)` either once over the whole output
/// (serial; FLOPs attributed to the kernel span) or row-chunked across
/// the [`crate::par`] workers, each worker recording its own `par` child
/// span carrying the FLOPs of its chunk (which roll up to the same
/// total).
fn run_rowwise<F>(name: &str, m: usize, k: usize, n: usize, c: &mut [f32], kernel: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    let mut sp = nshd_obs::span(name);
    sp.add_bytes(4 * (m * k + k * n + m * n) as u64);
    if n > 0 && par::should_parallelize(flops) {
        par::par_row_chunks(c, n, |first_row, chunk| {
            let rows = chunk.len() / n;
            let mut wsp = nshd_obs::span("par");
            wsp.add_flops(2 * (rows as u64) * (k as u64) * (n as u64));
            kernel(first_row, rows, chunk);
        });
    } else {
        sp.add_flops(flops);
        kernel(0, m, c);
    }
}

/// Computes `C = A · B` for row-major matrices.
///
/// `a` is `m×k`, `b` is `k×n`, and the result is `m×n`.
///
/// # Panics
///
/// Panics if the operand shapes are not rank-2 or the inner dimensions
/// disagree.
///
/// # Examples
///
/// ```
/// use nshd_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
/// assert_eq!(matmul(&a, &i), a);
/// # Ok::<(), nshd_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimensions disagree: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    run_rowwise("matmul", m, k, n, c.as_mut_slice(), |row0, rows, chunk| {
        gemm(rows, k, n, &av[row0 * k..(row0 + rows) * k], bv, chunk);
    });
    c
}

/// Computes `C = A · B` into a caller-provided output tensor.
///
/// `out` is overwritten (not accumulated into). The output rows are
/// partitioned across the [`crate::par`] worker set for large products,
/// each worker writing a disjoint row range of `out` with the same
/// serial per-row accumulation order — so the result is bit-identical
/// to the single-threaded product. The `_into` form exists so steady
/// callers (the serving runtime) can reuse one output allocation.
///
/// # Panics
///
/// Panics if operands are not rank-2, inner dimensions disagree, or
/// `out` is not `m×n`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = dims2(a, "matmul_into lhs");
    let (k2, n) = dims2(b, "matmul_into rhs");
    assert_eq!(k, k2, "matmul_into inner dimensions disagree: {k} vs {k2}");
    let (mo, no) = dims2(out, "matmul_into out");
    assert_eq!((mo, no), (m, n), "matmul_into output must be {m}×{n}, got {mo}×{no}");
    let (av, bv) = (a.as_slice(), b.as_slice());
    run_rowwise("matmul", m, k, n, out.as_mut_slice(), |row0, rows, chunk| {
        chunk.fill(0.0);
        gemm(rows, k, n, &av[row0 * k..(row0 + rows) * k], bv, chunk);
    });
}

/// Computes `C = A · Bᵀ` without materialising the transpose.
///
/// `a` is `m×k`, `b` is `n×k`, and the result is `m×n`. This variant is the
/// natural layout for similarity search (query rows against memory rows) and
/// for the backward pass of linear layers.
///
/// # Panics
///
/// Panics if operands are not rank-2 or `k` dimensions disagree.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "matmul_bt inner dimensions disagree: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    run_rowwise("matmul_bt", m, k, n, c.as_mut_slice(), |row0, rows, chunk| {
        bt_kernel(row0, rows, k, n, av, bv, chunk);
    });
    c
}

/// Computes `C = A · Bᵀ` into a caller-provided output tensor.
///
/// `out` is overwritten. Like [`matmul_into`], the row-major output lets
/// callers partition `a`'s rows across threads and write disjoint row
/// ranges of a shared result.
///
/// # Panics
///
/// Panics if operands are not rank-2, `k` dimensions disagree, or `out`
/// is not `m×n`.
pub fn matmul_bt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = dims2(a, "matmul_bt_into lhs");
    let (n, k2) = dims2(b, "matmul_bt_into rhs");
    assert_eq!(k, k2, "matmul_bt_into inner dimensions disagree: {k} vs {k2}");
    let (mo, no) = dims2(out, "matmul_bt_into out");
    assert_eq!((mo, no), (m, n), "matmul_bt_into output must be {m}×{n}, got {mo}×{no}");
    let (av, bv) = (a.as_slice(), b.as_slice());
    run_rowwise("matmul_bt", m, k, n, out.as_mut_slice(), |row0, rows, chunk| {
        bt_kernel(row0, rows, k, n, av, bv, chunk);
    });
}

/// The shared `A · Bᵀ` row kernel: fills `chunk` (rows `[row0,
/// row0+rows)` of the output) with dot products of `a` rows against `b`
/// rows. Overwrites, so pre-filling the output is unnecessary.
fn bt_kernel(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    av: &[f32],
    bv: &[f32],
    chunk: &mut [f32],
) {
    for local in 0..rows {
        let i = row0 + local;
        let arow = &av[i * k..(i + 1) * k];
        let crow = &mut chunk[local * n..(local + 1) * n];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = crate::ops::dot(arow, &bv[j * k..(j + 1) * k]);
        }
    }
}

/// Computes `C = Aᵀ · B` without materialising the transpose.
///
/// `a` is `k×m`, `b` is `k×n`, and the result is `m×n`. Used by weight
/// gradients (`dW = Xᵀ·dY`).
///
/// # Panics
///
/// Panics if operands are not rank-2 or `k` dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "matmul_at inner dimensions disagree: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    // Accumulate rank-1 updates row by row of A/B; cache-friendly on C.
    // Each output row i sees the p index strictly ascending with the
    // same zero-skip whether the rows are chunked or not, so the
    // row-parallel path is bit-identical to the serial one.
    run_rowwise("matmul_at", m, k, n, c.as_mut_slice(), |row0, rows, chunk| {
        for p in 0..k {
            let arow = &av[p * m + row0..p * m + row0 + rows];
            let brow = &bv[p * n..(p + 1) * n];
            for (local, &aip) in arow.iter().enumerate() {
                if aip == 0.0 {
                    continue;
                }
                let crow = &mut chunk[local * n..(local + 1) * n];
                for (c_el, &b_el) in crow.iter_mut().zip(brow) {
                    *c_el += aip * b_el;
                }
            }
        }
    });
    c
}

/// Matrix–vector product `y = A·x` for a row-major `m×k` matrix.
///
/// # Panics
///
/// Panics if `a` is not rank-2 or `x.len() != k`.
pub fn matvec(a: &Tensor, x: &[f32]) -> Vec<f32> {
    let (m, k) = dims2(a, "matvec lhs");
    assert_eq!(x.len(), k, "matvec expects a vector of length {k}");
    let av = a.as_slice();
    (0..m).map(|i| crate::ops::dot(&av[i * k..(i + 1) * k], x)).collect()
}

/// Vector–matrix product `y = xᵀ·A` for a row-major `k×n` matrix.
///
/// # Panics
///
/// Panics if `a` is not rank-2 or `x.len() != k`.
pub fn vecmat(x: &[f32], a: &Tensor) -> Vec<f32> {
    let (k, n) = dims2(a, "vecmat rhs");
    assert_eq!(x.len(), k, "vecmat expects a vector of length {k}");
    let av = a.as_slice();
    let mut y = vec![0.0f32; n];
    for (p, &xp) in x.iter().enumerate() {
        if xp == 0.0 {
            continue;
        }
        let arow = &av[p * n..(p + 1) * n];
        for (yj, &aj) in y.iter_mut().zip(arow) {
            *yj += xp * aj;
        }
    }
    y
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank-2, got shape {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

/// The blocked GEMM kernel: `c += a · b` over raw slices.
fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for pb in (0..k).step_by(BLOCK) {
            let p_end = (pb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let j_end = (jb + BLOCK).min(n);
                for i in ib..i_end {
                    for p in pb..p_end {
                        let aip = a[i * k + p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n + jb..p * n + j_end];
                        let crow = &mut c[i * n + jb..i * n + j_end];
                        for (c_el, &b_el) in crow.iter_mut().zip(brow) {
                            *c_el += aip * b_el;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *c.at_mut(&[i, j]) = s;
            }
        }
        c
    }

    fn rand_tensor(shape: [usize; 2], seed: u64) -> Tensor {
        // Small deterministic LCG; avoids a dev-dependency here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_tensor([5, 5], 1);
        let i = Tensor::from_fn([5, 5], |idx| if idx % 6 == 0 { 1.0 } else { 0.0 });
        assert_close(&matmul(&a, &i), &a, 1e-6);
        assert_close(&matmul(&i, &a), &a, 1e-6);
    }

    #[test]
    fn blocked_matches_naive_past_block_edge() {
        // Sizes straddling the 64-wide block boundary exercise tail logic.
        for &(m, k, n) in &[(3, 70, 5), (65, 64, 66), (1, 1, 1), (7, 129, 3)] {
            let a = rand_tensor([m, k], (m * k) as u64);
            let b = rand_tensor([k, n], (k * n + 7) as u64);
            assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
        }
    }

    #[test]
    fn bt_and_at_agree_with_explicit_transpose() {
        let a = rand_tensor([6, 9], 3);
        let b = rand_tensor([4, 9], 4);
        assert_close(&matmul_bt(&a, &b), &matmul(&a, &b.transposed()), 1e-4);
        let c = rand_tensor([9, 5], 5);
        let d = rand_tensor([9, 4], 6);
        assert_close(&matmul_at(&c, &d), &matmul(&c.transposed(), &d), 1e-4);
    }

    #[test]
    fn matvec_vecmat_agree_with_matmul() {
        let a = rand_tensor([4, 7], 10);
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.5 - 1.0).collect();
        let xv = Tensor::from_vec(x.clone(), [7, 1]).unwrap();
        let y = matvec(&a, &x);
        let y2 = matmul(&a, &xv);
        for (u, v) in y.iter().zip(y2.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
        let b = rand_tensor([7, 3], 11);
        let z = vecmat(&x, &b);
        let z2 = matmul(&xv.transposed(), &b);
        for (u, v) in z.iter().zip(z2.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn into_variants_match_allocating_variants_bitwise() {
        let a = rand_tensor([9, 33], 21);
        let b = rand_tensor([33, 7], 22);
        let mut out = Tensor::full([9, 7], f32::NAN); // stale contents must be overwritten
        matmul_into(&a, &b, &mut out);
        assert_eq!(out.as_slice(), matmul(&a, &b).as_slice());
        let bt = rand_tensor([7, 33], 23);
        let mut out_bt = Tensor::full([9, 7], f32::NAN);
        matmul_bt_into(&a, &bt, &mut out_bt);
        assert_eq!(out_bt.as_slice(), matmul_bt(&a, &bt).as_slice());
    }

    #[test]
    fn into_variant_supports_row_partitioned_output() {
        // Splitting A's rows and writing disjoint output row ranges must
        // reproduce the monolithic product exactly.
        let a = rand_tensor([8, 17], 31);
        let b = rand_tensor([17, 5], 32);
        let whole = matmul(&a, &b);
        let mut assembled = Tensor::zeros([8, 5]);
        for (chunk, rows) in [(0usize, 3usize), (3, 3), (6, 2)] {
            let part = Tensor::from_vec(
                a.as_slice()[chunk * 17..(chunk + rows) * 17].to_vec(),
                [rows, 17],
            )
            .unwrap();
            let mut out = Tensor::zeros([rows, 5]);
            matmul_into(&part, &b, &mut out);
            assembled.write_slice(chunk * 5, out.as_slice());
        }
        assert_eq!(assembled.as_slice(), whole.as_slice());
    }

    #[test]
    #[should_panic(expected = "output must be")]
    fn into_variant_rejects_wrong_output_shape() {
        let mut out = Tensor::zeros([2, 2]);
        matmul_into(&Tensor::zeros([2, 3]), &Tensor::zeros([3, 4]), &mut out);
    }
}
