//! Elementwise arithmetic, reductions, and the numerically-stable softmax.

use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Adds a scalar to every element.
    pub fn shift(&self, k: f32) -> Tensor {
        self.map(|x| x + k)
    }

    /// In-place `self += alpha * other` (AXPY). The workhorse of every
    /// gradient-descent update in the workspace.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy requires identical shapes ({} vs {})",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::max)
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.as_slice().iter().copied().reduce(f32::min)
    }

    /// Index of the maximum element (first occurrence), or `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.as_slice().iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Dot product with another tensor of identical length.
    ///
    /// Shapes need not match, only element counts — callers frequently dot a
    /// flattened activation against a weight row.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot requires equal lengths");
        dot(self.as_slice(), other.as_slice())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        dot(self.as_slice(), self.as_slice()).sqrt()
    }

    /// Numerically-stable softmax over the last axis.
    ///
    /// For a rank-2 `(batch, classes)` tensor this is the per-row softmax;
    /// rank-1 tensors are treated as a single row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or the last axis is empty.
    pub fn softmax(&self) -> Tensor {
        assert!(self.shape().rank() >= 1, "softmax requires rank >= 1");
        let cols = self.shape().dim(self.shape().rank() - 1);
        assert!(cols > 0, "softmax requires a non-empty last axis");
        let mut out = self.clone();
        for row in out.as_mut_slice().chunks_mut(cols) {
            softmax_row(row);
        }
        out
    }

    /// Softmax over the last axis with a temperature divisor, as used in
    /// knowledge distillation: `softmax(x / t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t <= 0` or the tensor is rank-0.
    pub fn softmax_with_temperature(&self, t: f32) -> Tensor {
        assert!(t > 0.0, "temperature must be positive, got {t}");
        self.scale(1.0 / t).softmax()
    }
}

/// Plain dot product of two equal-length slices, 4-way unrolled.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// In-place numerically-stable softmax of one row.
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.shift(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[3.0, -1.0, 2.0]);
        assert_eq!(t.sum(), 4.0);
        assert!(close(t.mean(), 4.0 / 3.0));
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.argmax(), Some(0));
        let empty = Tensor::zeros([0]);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.argmax(), None);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn argmax_ties_take_first() {
        let t = Tensor::from_slice(&[1.0, 5.0, 5.0]);
        assert_eq!(t.argmax(), Some(1));
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert!(close(a.norm(), 5.0));
        // Unrolled path: length not divisible by 4.
        let long: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let t = Tensor::from_slice(&long);
        let expected: f32 = long.iter().map(|v| v * v).sum();
        assert!(close(t.dot(&t), expected));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]).unwrap();
        let s = t.softmax();
        for row in s.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!(close(sum, 1.0));
        }
        // Uniform logits -> uniform probabilities.
        assert!(close(s.at(&[1, 0]), 1.0 / 3.0));
        // Monotone in logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_slice(&[1000.0, 1001.0]);
        let s = t.softmax();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        assert!(close(s.as_slice().iter().sum::<f32>(), 1.0));
    }

    #[test]
    fn temperature_flattens_distribution() {
        let t = Tensor::from_slice(&[0.0, 4.0]);
        let sharp = t.softmax();
        let soft = t.softmax_with_temperature(8.0);
        assert!(soft.at(&[0]) > sharp.at(&[0]));
        assert!(soft.at(&[1]) < sharp.at(&[1]));
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        Tensor::from_slice(&[1.0]).softmax_with_temperature(0.0);
    }
}
