//! Structured CPU parallelism for the tensor kernels.
//!
//! A std-only layer over [`std::thread::scope`]: no persistent pool, no
//! external dependencies, no unsafe. Parallel regions are *scoped* — every
//! worker joins before the entry point returns — so borrowed inputs and
//! row-partitioned outputs need no reference counting.
//!
//! # Thread count
//!
//! The effective worker count comes from, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (tests and
//!    benchmarks compare serial vs parallel in-process with it);
//! 2. the `NSHD_THREADS` environment variable, parsed once per process;
//! 3. [`std::thread::available_parallelism`].
//!
//! Inside a parallel region every worker (including the caller, while it
//! executes its own chunk) sees [`threads`]` == 1`, so nested kernels run
//! serially instead of oversubscribing the machine.
//!
//! # Determinism
//!
//! The partitioners split work into **contiguous, front-loaded chunks whose
//! boundaries depend only on the item count and worker count**, and each
//! chunk is processed by the same serial code the single-threaded path
//! runs. Kernels whose per-row accumulation order does not cross rows
//! (every GEMM variant in [`crate::matmul`]) therefore produce bit-identical
//! results at any thread count — see `DESIGN.md` ("Deterministic
//! parallelism") and `crates/tensor/tests/determinism.rs`.
//!
//! # Observability
//!
//! Both partitioners capture the caller's innermost `nshd-obs` span path
//! and re-root each worker's span stack under it, so spans opened inside a
//! parallel region nest where the caller's trace expects them, and
//! per-thread FLOP attribution rolls up the usual way.

use std::cell::Cell;
use std::sync::OnceLock;

/// Hard cap on the configured thread count: a typo in `NSHD_THREADS`
/// must not translate into thousands of spawned threads.
const MAX_THREADS: usize = 256;

/// Minimum useful FLOP count for a parallel region. Below this, spawn +
/// join overhead (tens of microseconds) rivals the kernel itself.
const PAR_MIN_FLOPS: u64 = 1 << 19;

thread_local! {
    /// Per-thread override of the worker count; `0` means "no override".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Restores the previous thread-local override when dropped, so
/// [`with_threads`] stays balanced even across unwinds.
struct OverrideGuard {
    previous: usize,
}

impl OverrideGuard {
    fn set(n: usize) -> OverrideGuard {
        OverrideGuard { previous: OVERRIDE.with(|o| o.replace(n)) }
    }

    /// Marks the current thread as a parallel-region worker: nested
    /// kernels see one thread and run serially.
    fn serial() -> OverrideGuard {
        OverrideGuard::set(1)
    }
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.previous));
    }
}

/// The process-wide thread count: `NSHD_THREADS` when set to a positive
/// integer (clamped to 256), otherwise the machine's available
/// parallelism. Parsed once and cached.
fn configured() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| match std::env::var("NSHD_THREADS") {
        Ok(raw) => raw.trim().parse::<usize>().ok().map_or(1, |n| n.clamp(1, MAX_THREADS)),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_THREADS)),
    })
}

/// The worker count parallel regions started on this thread will use.
///
/// Honors the innermost [`with_threads`] override first, then the cached
/// `NSHD_THREADS` / hardware default. Always at least 1. Inside a
/// parallel region this returns 1 (workers never nest parallelism).
///
/// # Examples
///
/// ```
/// use nshd_tensor::par;
///
/// assert!(par::threads() >= 1);
/// assert_eq!(par::with_threads(3, par::threads), 3);
/// ```
pub fn threads() -> usize {
    let over = OVERRIDE.with(Cell::get);
    if over > 0 {
        over
    } else {
        configured()
    }
}

/// Runs `f` with the worker count pinned to `n` on this thread — the
/// programmatic equivalent of setting `NSHD_THREADS`, scoped to a
/// closure. This is how the determinism tests and `kernel_bench` compare
/// serial and parallel execution within one process.
///
/// Parallel regions started *inside* `f` inherit the override (the
/// partitioners forward it to their workers implicitly by splitting the
/// work on the calling thread).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use nshd_tensor::par;
///
/// let serial = par::with_threads(1, || par::threads());
/// let wide = par::with_threads(4, || par::threads());
/// assert_eq!((serial, wide), (1, 4));
/// // The override is gone once the closure returns.
/// assert!(par::threads() >= 1);
/// ```
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_threads needs at least one thread");
    let _guard = OverrideGuard::set(n.min(MAX_THREADS));
    f()
}

/// Whether a kernel performing `flops` floating-point operations is
/// worth a parallel region under the current thread count. False when
/// only one worker is configured or the kernel is too small to amortise
/// thread spawn/join.
///
/// # Examples
///
/// ```
/// use nshd_tensor::par;
///
/// // One worker: never parallelize, regardless of size.
/// assert!(!par::with_threads(1, || par::should_parallelize(u64::MAX)));
/// // Many workers: large kernels qualify, tiny ones do not.
/// assert!(par::with_threads(4, || par::should_parallelize(1 << 24)));
/// assert!(!par::with_threads(4, || par::should_parallelize(1 << 10)));
/// ```
pub fn should_parallelize(flops: u64) -> bool {
    flops >= PAR_MIN_FLOPS && threads() > 1
}

/// Splits `data` into contiguous row chunks and runs `f(first_row,
/// chunk)` on each, one chunk per worker, on scoped threads. The caller
/// executes the first chunk itself while the spawned workers handle the
/// rest; all workers join before returning.
///
/// Chunk boundaries are deterministic: `rows / workers` rows each, the
/// remainder front-loaded one row at a time. Workers run with nested
/// parallelism disabled and with their span stack re-rooted under the
/// caller's current `nshd-obs` path.
///
/// With one worker (or fewer rows than two) this degrades to a plain
/// call of `f(0, data)` on the current thread — the serial path and the
/// single-threaded parallel path are literally the same code.
///
/// # Panics
///
/// Panics if `row_len > 0` and `data.len()` is not a multiple of it.
///
/// # Examples
///
/// ```
/// use nshd_tensor::par;
///
/// let mut rows = vec![0u32; 6]; // three rows of two columns
/// par::with_threads(2, || {
///     par::par_row_chunks(&mut rows, 2, |first_row, chunk| {
///         for (r, row) in chunk.chunks_mut(2).enumerate() {
///             row.fill((first_row + r) as u32);
///         }
///     });
/// });
/// assert_eq!(rows, [0, 0, 1, 1, 2, 2]);
/// ```
pub fn par_row_chunks<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if row_len == 0 {
        f(0, data);
        return;
    }
    assert_eq!(
        data.len() % row_len,
        0,
        "data length {} is not a multiple of the row length {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let workers = threads().min(rows);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let base = rows / workers;
    let extra = rows % workers;
    let ctx = nshd_obs::current_path();
    std::thread::scope(|scope| {
        let f = &f;
        let ctx = ctx.as_deref();
        let first_take = base + usize::from(extra > 0);
        let (caller_chunk, mut rest) = data.split_at_mut(first_take * row_len);
        let mut first_row = first_take;
        for index in 1..workers {
            let take = base + usize::from(index < extra);
            let (head, tail) = rest.split_at_mut(take * row_len);
            rest = tail;
            let row0 = first_row;
            scope.spawn(move || {
                let _serial = OverrideGuard::serial();
                let _ctx = ctx.map(nshd_obs::enter_context);
                f(row0, head);
            });
            first_row += take;
        }
        let _serial = OverrideGuard::serial();
        f(0, caller_chunk);
    });
}

/// Maps `f` over `items` in parallel, preserving order: result `i` is
/// `f(&items[i])`. Items are split into contiguous front-loaded chunks,
/// one per worker, exactly like [`par_row_chunks`]; the caller processes
/// the first chunk itself. Workers run with nested parallelism disabled
/// and re-rooted under the caller's current `nshd-obs` span path.
///
/// With one worker this is a plain sequential `map`.
///
/// # Examples
///
/// ```
/// use nshd_tensor::par;
///
/// let squares = par::with_threads(3, || par::par_map(&[1, 2, 3, 4, 5], |&x| x * x));
/// assert_eq!(squares, [1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(n, || None);
    let base = n / workers;
    let extra = n % workers;
    let ctx = nshd_obs::current_path();
    std::thread::scope(|scope| {
        let f = &f;
        let ctx = ctx.as_deref();
        let first_take = base + usize::from(extra > 0);
        let (caller_items, mut rest_items) = items.split_at(first_take);
        let (caller_out, mut rest_out) = out.split_at_mut(first_take);
        for index in 1..workers {
            let take = base + usize::from(index < extra);
            let (item_head, item_tail) = rest_items.split_at(take);
            rest_items = item_tail;
            let (out_head, out_tail) = rest_out.split_at_mut(take);
            rest_out = out_tail;
            scope.spawn(move || {
                let _serial = OverrideGuard::serial();
                let _ctx = ctx.map(nshd_obs::enter_context);
                for (slot, item) in out_head.iter_mut().zip(item_head) {
                    *slot = Some(f(item));
                }
            });
        }
        let _serial = OverrideGuard::serial();
        for (slot, item) in caller_out.iter_mut().zip(caller_items) {
            *slot = Some(f(item));
        }
    });
    let results: Vec<R> = out.into_iter().flatten().collect();
    debug_assert_eq!(results.len(), n, "every par_map slot must be filled");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_nests_and_restores() {
        let outer = threads();
        let seen = with_threads(5, || {
            let inner = with_threads(2, threads);
            (threads(), inner)
        });
        assert_eq!(seen, (5, 2));
        assert_eq!(threads(), outer);
    }

    #[test]
    fn workers_observe_one_thread() {
        with_threads(4, || {
            let mut flags = vec![0usize; 8];
            par_row_chunks(&mut flags, 1, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v = threads();
                }
            });
            assert_eq!(flags, vec![1; 8], "nested kernels must see one thread");
        });
    }

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        for threads_n in [1usize, 2, 3, 4, 7] {
            for rows in [0usize, 1, 2, 3, 5, 8, 13] {
                let mut data = vec![0u8; rows * 3];
                with_threads(threads_n, || {
                    par_row_chunks(&mut data, 3, |first_row, chunk| {
                        assert_eq!(chunk.len() % 3, 0);
                        for (r, row) in chunk.chunks_mut(3).enumerate() {
                            for v in row.iter_mut() {
                                *v += 1 + (first_row + r) as u8;
                            }
                        }
                    });
                });
                let expect: Vec<u8> = (0..rows).flat_map(|r| [r as u8 + 1; 3]).collect();
                assert_eq!(data, expect, "threads={threads_n} rows={rows}");
            }
        }
    }

    #[test]
    fn par_map_preserves_order_for_ragged_sizes() {
        for threads_n in [1usize, 2, 4, 7] {
            for len in [0usize, 1, 2, 5, 9, 16] {
                let items: Vec<i64> = (0..len as i64).collect();
                let got = with_threads(threads_n, || par_map(&items, |&x| x * 10));
                let expect: Vec<i64> = items.iter().map(|&x| x * 10).collect();
                assert_eq!(got, expect, "threads={threads_n} len={len}");
            }
        }
    }

    #[test]
    fn zero_row_len_runs_serially() {
        let mut empty: Vec<f32> = Vec::new();
        par_row_chunks(&mut empty, 0, |first, chunk| {
            assert_eq!(first, 0);
            assert!(chunk.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_data_length_panics() {
        let mut data = vec![0.0f32; 7];
        with_threads(2, || par_row_chunks(&mut data, 3, |_, _| {}));
    }
}
