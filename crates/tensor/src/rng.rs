//! A small deterministic random number generator.
//!
//! Every stochastic component in the workspace — weight initialisation,
//! dataset synthesis, projection matrices — is seeded through this
//! generator so that experiments are exactly reproducible. The core is
//! SplitMix64 (public-domain, Steele et al.), which passes BigCrush and is
//! trivially portable; we layer uniform/normal/bipolar helpers on top.

/// Deterministic SplitMix64 generator with convenience samplers.
///
/// # Examples
///
/// ```
/// use nshd_tensor::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives an independent child generator; used to give each component
    /// (projection matrix, dataset split, layer init) its own stream.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.uniform().max(1e-7);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Random sign: `+1.0` or `-1.0` with equal probability.
    pub fn bipolar(&mut self) -> f32 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut parent = Rng::new(1);
        let mut child = parent.fork(0);
        let mut child2 = parent.fork(1);
        let a: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(4);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bipolar_is_balanced() {
        let mut rng = Rng::new(5);
        let pos = (0..10_000).filter(|_| rng.bipolar() > 0.0).count();
        assert!((4_700..5_300).contains(&pos), "positives {pos}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng::new(6);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(9);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(10);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
