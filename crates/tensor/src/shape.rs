//! Shapes and index arithmetic for row-major (C-order) tensors.

use crate::error::TensorError;
use std::fmt;

/// The shape of a tensor: an ordered list of dimension sizes.
///
/// Shapes are row-major: the last dimension varies fastest in memory. The
/// crate convention for image tensors is NCHW (batch, channel, height,
/// width).
///
/// # Examples
///
/// ```
/// use nshd_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// A rank-0 shape (scalar) is permitted and has one element.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The stride of the last axis is always 1; a scalar has no strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[axis],
                "index {i} out of bounds for axis {axis} with size {}",
                self.dims[axis]
            );
            off += i * s;
        }
        off
    }

    /// Checks that `self` and `other` are identical, returning a descriptive
    /// error otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when the shapes differ.
    pub fn ensure_same(&self, other: &Shape) -> Result<(), TensorError> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::IncompatibleShapes { lhs: self.dims.clone(), rhs: other.dims.clone() })
        }
    }
}

/// Spatial output size of a convolution along one axis, or `None` when
/// the (padded) input is smaller than the kernel.
///
/// Computes `(input + 2·padding - kernel) / stride + 1` with the same
/// floor semantics as the `im2col` lowering.
///
/// # Examples
///
/// ```
/// use nshd_tensor::conv_out_dim;
///
/// assert_eq!(conv_out_dim(32, 3, 1, 1), Some(32));
/// assert_eq!(conv_out_dim(5, 3, 2, 1), Some(3));
/// assert_eq!(conv_out_dim(2, 5, 1, 0), None);
/// ```
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if kernel == 0 || stride == 0 || padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

/// Spatial output size of an unpadded pooling window along one axis, or
/// `None` when the window does not fit the input.
///
/// # Examples
///
/// ```
/// use nshd_tensor::pool_out_dim;
///
/// assert_eq!(pool_out_dim(16, 2, 2), Some(8));
/// assert_eq!(pool_out_dim(3, 2, 1), Some(2));
/// assert_eq!(pool_out_dim(2, 4, 4), None);
/// ```
pub fn pool_out_dim(input: usize, window: usize, stride: usize) -> Option<usize> {
    if window == 0 || stride == 0 || input < window {
        return None;
    }
    Some((input - window) / stride + 1)
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::from([2, 3, 4]);
        let mut seen = vec![false; s.len()];
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(!seen[off], "offset {off} visited twice");
                    seen[off] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::from([2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn ensure_same_reports_both_shapes() {
        let a = Shape::from([2, 3]);
        let b = Shape::from([3, 2]);
        let err = a.ensure_same(&b).unwrap_err();
        assert_eq!(err, TensorError::IncompatibleShapes { lhs: vec![2, 3], rhs: vec![3, 2] });
        assert!(a.ensure_same(&a.clone()).is_ok());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2×3)");
    }

    #[test]
    fn conv_and_pool_out_dims() {
        // Same-padding 3×3 stride-1 conv preserves the spatial size.
        assert_eq!(conv_out_dim(32, 3, 1, 1), Some(32));
        // Stride-2 halving as used by the MobileNet downsampling convs.
        assert_eq!(conv_out_dim(32, 3, 2, 1), Some(16));
        // Degenerate configurations never divide by zero or underflow.
        assert_eq!(conv_out_dim(4, 0, 1, 0), None);
        assert_eq!(conv_out_dim(4, 3, 0, 1), None);
        assert_eq!(conv_out_dim(2, 5, 1, 1), None);
        assert_eq!(pool_out_dim(16, 2, 2), Some(8));
        assert_eq!(pool_out_dim(5, 2, 1), Some(4));
        assert_eq!(pool_out_dim(1, 2, 2), None);
        assert_eq!(pool_out_dim(4, 0, 1), None);
    }

    #[test]
    fn zero_sized_dimension_is_empty() {
        let s = Shape::from([2, 0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }
}
