//! The dense `f32` tensor type used throughout the workspace.

use crate::error::TensorError;
use crate::shape::Shape;
use std::fmt;

/// A dense, owned, row-major `f32` tensor.
///
/// This is the single numeric container shared by the CNN substrate
/// ([`nshd-nn`]), the HD computing crate, and the NSHD pipeline. It favours
/// simplicity and predictable performance on a single CPU core: contiguous
/// storage, no views-with-strides, explicit copies.
///
/// # Examples
///
/// ```
/// use nshd_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), nshd_tensor::TensorError>(())
/// ```
///
/// [`nshd-nn`]: https://example.invalid/nshd
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: vec![0.0; shape.len()], shape }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor { data: vec![value; shape.len()], shape }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor that wraps `data` with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::ShapeMismatch { expected: data.len(), got: shape.len() });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: Shape::new(vec![data.len()]) }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: impl Into<Shape>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(f).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying storage, in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy of this tensor with a new shape over the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ShapeMismatch { expected: self.data.len(), got: shape.len() });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// Reinterprets the shape in place (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshaped(mut self, shape: impl Into<Shape>) -> Result<Tensor, TensorError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ShapeMismatch { expected: self.data.len(), got: shape.len() });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Flattens into a rank-1 tensor (no copy).
    pub fn flattened(self) -> Tensor {
        let n = self.data.len();
        Tensor { data: self.data, shape: Shape::new(vec![n]) }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Shape::ensure_same`] to check
    /// first when shapes come from untrusted input.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_with requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        Tensor {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Copies `src` into this tensor starting at flat offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len()` exceeds the tensor length.
    pub fn write_slice(&mut self, offset: usize, src: &[f32]) {
        self.data[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Extracts batch element `n` from an NCHW (or generally N-leading)
    /// tensor as a tensor of the remaining shape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank-0 or `n` is out of bounds.
    pub fn batch_item(&self, n: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "batch_item requires rank >= 1");
        let batch = self.shape.dim(0);
        assert!(n < batch, "batch index {n} out of bounds for {batch}");
        let inner: Vec<usize> = self.shape.dims()[1..].to_vec();
        let inner_len: usize = inner.iter().product();
        let start = n * inner_len;
        Tensor { data: self.data[start..start + inner_len].to_vec(), shape: Shape::new(inner) }
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] when `items` is empty and
    /// [`TensorError::IncompatibleShapes`] when shapes disagree.
    pub fn stack(items: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = items.first().ok_or(TensorError::EmptyTensor)?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            first.shape.ensure_same(&item.shape)?;
            data.extend_from_slice(&item.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape.dims());
        Ok(Tensor { data, shape: Shape::new(dims) })
    }

    /// Stacks equal-length `f32` rows into a rank-2 `N×L` tensor — the
    /// batch-assembly primitive used by the serving runtime to pack
    /// per-sample feature vectors into one matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] when `rows` is empty and
    /// [`TensorError::ShapeMismatch`] when row lengths disagree.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Tensor, TensorError> {
        let first = rows.first().ok_or(TensorError::EmptyTensor)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(cols * rows.len());
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::ShapeMismatch { expected: cols, got: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Tensor { data, shape: Shape::new(vec![rows.len(), cols]) })
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { data: out, shape: Shape::from([c, r]) }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", … {} more", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let o = Tensor::ones([3]);
        assert!(o.as_slice().iter().all(|&v| v == 1.0));
        let f = Tensor::full([2], 7.5);
        assert_eq!(f.as_slice(), &[7.5, 7.5]);
        let g = Tensor::from_fn([4], |i| i as f32);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], [2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { expected: 5, got: 6 });
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), [2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
    }

    #[test]
    fn at_mut_writes() {
        let mut t = Tensor::zeros([2, 2]);
        *t.at_mut(&[1, 1]) = 5.0;
        assert_eq!(t.at(&[1, 1]), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let r = t.reshape([4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([3]).is_err());
    }

    #[test]
    fn flattened_is_rank_one() {
        let t = Tensor::zeros([2, 3, 4]).flattened();
        assert_eq!(t.dims(), &[24]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn zip_shape_mismatch_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        a.zip_with(&b, |x, _| x);
    }

    #[test]
    fn batch_item_extracts_inner() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), [3, 2, 2]).unwrap();
        let item = t.batch_item(1);
        assert_eq!(item.dims(), &[2, 2]);
        assert_eq!(item.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn stack_round_trips_batch_item() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack(&[a.clone(), b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.batch_item(0).as_slice(), a.as_slice());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn from_rows_builds_row_major_matrix() {
        let m = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.dims(), &[3, 2]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(Tensor::from_rows(&[]).is_err());
        assert!(Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_rank2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let tt = t.transposed();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn debug_preview_truncates() {
        let t = Tensor::zeros([100]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(s.len() < 200);
    }
}
