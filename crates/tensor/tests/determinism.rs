//! Cross-thread determinism harness for the parallel GEMM kernels.
//!
//! The `nshd_tensor::par` contract is that parallel execution is
//! **bit-identical** to serial execution — not approximately equal.
//! Each thread owns a disjoint row range of the output and replays the
//! exact serial per-row accumulation order, so `f32::to_bits` must
//! match for every element regardless of worker count.
//!
//! Every kernel is exercised across worker counts {1, 2, 4, 7} (the
//! `NSHD_THREADS` grid from the issue, applied via the programmatic
//! `par::with_threads` override) and a shape grid with deliberately
//! ragged row counts: m not divisible by the thread count, m smaller
//! than the thread count, and the m = 0 / m = 1 edge cases.

use nshd_tensor::{matmul, matmul_at, matmul_bt, matmul_bt_into, matmul_into, par, Rng, Tensor};

/// Worker counts to compare against the single-threaded baseline.
const THREADS: [usize; 3] = [2, 4, 7];

/// (m, k, n) grid. Mixes sizes big enough to cross the parallel FLOP
/// threshold with ragged and degenerate row counts.
const SHAPES: [(usize, usize, usize); 8] = [
    (0, 64, 64),    // m = 0: empty output
    (1, 512, 512),  // m = 1: fewer rows than workers, above threshold
    (3, 400, 300),  // m < threads for the 4/7-worker runs
    (5, 300, 400),  // ragged for every worker count
    (64, 128, 96),  // divides evenly at 2 and 4, ragged at 7
    (65, 64, 66),   // off-by-one row count
    (101, 257, 33), // primes everywhere
    (7, 129, 3),    // tiny n, below the parallel threshold
];

fn rand_tensor(shape: [usize; 2], rng: &mut Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.uniform_in(-2.0, 2.0))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `op` serially and under every worker count in [`THREADS`],
/// asserting all outputs are bit-identical to the serial baseline.
fn assert_thread_invariant(label: String, op: impl Fn() -> Tensor) {
    let baseline = bits(&par::with_threads(1, &op));
    for t in THREADS {
        let parallel = bits(&par::with_threads(t, &op));
        assert_eq!(baseline, parallel, "{label}: serial vs {t} workers diverged bitwise");
    }
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    let mut rng = Rng::new(0x5eed);
    for (m, k, n) in SHAPES {
        let a = rand_tensor([m, k], &mut rng);
        let b = rand_tensor([k, n], &mut rng);
        assert_thread_invariant(format!("matmul {m}x{k}x{n}"), || matmul(&a, &b));
    }
}

#[test]
fn matmul_bt_is_bit_identical_across_thread_counts() {
    let mut rng = Rng::new(0xb7);
    for (m, k, n) in SHAPES {
        let a = rand_tensor([m, k], &mut rng);
        let b = rand_tensor([n, k], &mut rng); // B is n x k, used transposed
        assert_thread_invariant(format!("matmul_bt {m}x{k}x{n}"), || matmul_bt(&a, &b));
    }
}

#[test]
fn matmul_at_is_bit_identical_across_thread_counts() {
    let mut rng = Rng::new(0xa7);
    for (m, k, n) in SHAPES {
        let a = rand_tensor([k, m], &mut rng); // A is k x m, used transposed
        let b = rand_tensor([k, n], &mut rng);
        assert_thread_invariant(format!("matmul_at {m}x{k}x{n}"), || matmul_at(&a, &b));
    }
}

/// The `_into` variants must overwrite (not accumulate into) whatever
/// the output buffer holds, with the same bit-exactness guarantee. The
/// buffers are poisoned with NaN so any skipped element is caught.
#[test]
fn into_variants_overwrite_poisoned_buffers_identically() {
    let mut rng = Rng::new(0x17);
    for (m, k, n) in SHAPES {
        let a = rand_tensor([m, k], &mut rng);
        let b = rand_tensor([k, n], &mut rng);
        let bt = rand_tensor([n, k], &mut rng);

        let serial_mm = par::with_threads(1, || {
            let mut out = Tensor::full([m, n], f32::NAN);
            matmul_into(&a, &b, &mut out);
            out
        });
        let serial_bt = par::with_threads(1, || {
            let mut out = Tensor::full([m, n], f32::NAN);
            matmul_bt_into(&a, &bt, &mut out);
            out
        });
        assert!(serial_mm.as_slice().iter().all(|v| !v.is_nan()), "matmul_into left NaN");
        assert!(serial_bt.as_slice().iter().all(|v| !v.is_nan()), "matmul_bt_into left NaN");
        assert_eq!(bits(&serial_mm), bits(&matmul(&a, &b)), "matmul_into != matmul");
        assert_eq!(bits(&serial_bt), bits(&matmul_bt(&a, &bt)), "matmul_bt_into != matmul_bt");

        for t in THREADS {
            let par_mm = par::with_threads(t, || {
                let mut out = Tensor::full([m, n], f32::NAN);
                matmul_into(&a, &b, &mut out);
                out
            });
            let par_bt = par::with_threads(t, || {
                let mut out = Tensor::full([m, n], f32::NAN);
                matmul_bt_into(&a, &bt, &mut out);
                out
            });
            assert_eq!(
                bits(&serial_mm),
                bits(&par_mm),
                "matmul_into {m}x{k}x{n}: serial vs {t} workers"
            );
            assert_eq!(
                bits(&serial_bt),
                bits(&par_bt),
                "matmul_bt_into {m}x{k}x{n}: serial vs {t} workers"
            );
        }
    }
}

/// Reusing one output buffer across differently-threaded runs must not
/// leak state between them (per-chunk zero-fill covers every row).
#[test]
fn buffer_reuse_across_thread_counts_is_clean() {
    let mut rng = Rng::new(0x99);
    let a = rand_tensor([65, 128], &mut rng);
    let b = rand_tensor([128, 96], &mut rng);
    let mut out = Tensor::full([65, 96], f32::NAN);
    par::with_threads(1, || matmul_into(&a, &b, &mut out));
    let baseline = bits(&out);
    for t in THREADS {
        par::with_threads(t, || matmul_into(&a, &b, &mut out));
        assert_eq!(baseline, bits(&out), "reused buffer diverged at {t} workers");
    }
}
