//! Property-style randomized GEMM tests.
//!
//! ~200 random shape/value cases per operation, seeded through the
//! in-tree [`nshd_tensor::Rng`] (no external property-testing
//! dependency), checked against a naive triple-loop reference kernel
//! kept in this file. The blocked production kernels accumulate in a
//! different order than the naive loop, so values are compared with a
//! relative tolerance scaled by the inner dimension; overwrite (not
//! accumulate) semantics of the `*_into` variants are checked
//! **bitwise** against the allocating variants, with poisoned output
//! buffers.

use nshd_tensor::{matmul, matmul_at, matmul_bt, matmul_bt_into, matmul_into, Rng, Tensor};

const CASES: usize = 200;
const MAX_DIM: usize = 48;

/// Naive reference: `C[i][j] = sum_p A[i][p] * B[p][j]` in f64 so the
/// reference itself contributes no rounding surprises.
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

/// Tolerance for comparing an f32 accumulation against the f64
/// reference: proportional to the number of additions and the magnitude
/// of the operands (inputs are bounded by 2, so |dot| <= 4k).
fn tolerance(k: usize) -> f32 {
    1e-5 * (k as f32) + 1e-5
}

fn assert_close(got: &[f32], want: &[f32], k: usize, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    let tol = tolerance(k);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol,
            "{label}: element {i} differs: got {g}, want {w} (tol {tol})"
        );
    }
}

fn rand_dims(rng: &mut Rng) -> (usize, usize, usize) {
    // Bias towards small shapes but include degenerate 1-sized dims.
    (rng.below(MAX_DIM) + 1, rng.below(MAX_DIM) + 1, rng.below(MAX_DIM) + 1)
}

fn rand_tensor(shape: [usize; 2], rng: &mut Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.uniform_in(-2.0, 2.0))
}

#[test]
fn matmul_matches_naive_reference() {
    let mut rng = Rng::new(0x6e_4d);
    for case in 0..CASES {
        let (m, k, n) = rand_dims(&mut rng);
        let a = rand_tensor([m, k], &mut rng);
        let b = rand_tensor([k, n], &mut rng);
        let got = matmul(&a, &b);
        let want = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        assert_close(got.as_slice(), &want, k, &format!("case {case}: matmul {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_bt_matches_naive_reference() {
    let mut rng = Rng::new(0xb7_01);
    for case in 0..CASES {
        let (m, k, n) = rand_dims(&mut rng);
        let a = rand_tensor([m, k], &mut rng);
        let bt = rand_tensor([n, k], &mut rng);
        // Materialize B = Bt^T row-major and reuse the same reference.
        let btv = bt.as_slice();
        let b: Vec<f32> = (0..k * n).map(|idx| btv[(idx % n) * k + idx / n]).collect();
        let got = matmul_bt(&a, &bt);
        let want = naive_matmul(a.as_slice(), &b, m, k, n);
        assert_close(got.as_slice(), &want, k, &format!("case {case}: matmul_bt {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_at_matches_naive_reference() {
    let mut rng = Rng::new(0xa7_02);
    for case in 0..CASES {
        let (m, k, n) = rand_dims(&mut rng);
        let at = rand_tensor([k, m], &mut rng);
        let b = rand_tensor([k, n], &mut rng);
        // Materialize A = At^T row-major and reuse the same reference.
        let atv = at.as_slice();
        let a: Vec<f32> = (0..m * k).map(|idx| atv[(idx % k) * m + idx / k]).collect();
        let got = matmul_at(&at, &b);
        let want = naive_matmul(&a, b.as_slice(), m, k, n);
        assert_close(got.as_slice(), &want, k, &format!("case {case}: matmul_at {m}x{k}x{n}"));
    }
}

/// `matmul_into` / `matmul_bt_into` must produce bitwise the same
/// values as their allocating counterparts and fully overwrite a
/// poisoned output buffer — never accumulate into it.
#[test]
fn into_variants_overwrite_and_match_allocating_bitwise() {
    let mut rng = Rng::new(0x17_03);
    for case in 0..CASES {
        let (m, k, n) = rand_dims(&mut rng);
        let a = rand_tensor([m, k], &mut rng);
        let b = rand_tensor([k, n], &mut rng);
        let bt = rand_tensor([n, k], &mut rng);

        let poison = rng.uniform_in(-100.0, 100.0);
        let mut out = Tensor::full([m, n], poison);
        matmul_into(&a, &b, &mut out);
        let want = matmul(&a, &b);
        assert_eq!(
            out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "case {case}: matmul_into {m}x{k}x{n} != matmul (poison {poison})"
        );

        let mut out_bt = Tensor::full([m, n], poison);
        matmul_bt_into(&a, &bt, &mut out_bt);
        let want_bt = matmul_bt(&a, &bt);
        assert_eq!(
            out_bt.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_bt.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "case {case}: matmul_bt_into {m}x{k}x{n} != matmul_bt (poison {poison})"
        );
    }
}
