//! Property-based tests for the tensor substrate.
//!
//! The properties are exercised over many seeded-random cases generated
//! with the in-repo [`Rng`] (the workspace builds fully offline, so no
//! external property-testing framework is used). Each failure message
//! carries the case seed, which reproduces the exact inputs.

use nshd_tensor::{col2im, im2col, matmul, matmul_at, matmul_bt, ConvGeometry, Rng, Shape, Tensor};

const CASES: u64 = 64;

fn random_matrix(rng: &mut Rng, max: usize) -> Tensor {
    let r = rng.below(max) + 1;
    let c = rng.below(max) + 1;
    Tensor::from_fn([r, c], |_| rng.uniform_in(-10.0, 10.0))
}

fn random_vec(rng: &mut Rng, lo: f32, hi: f32, min_len: usize, max_len: usize) -> Vec<f32> {
    let n = min_len + rng.below(max_len - min_len + 1);
    (0..n).map(|_| rng.uniform_in(lo, hi)).collect()
}

#[test]
fn reshape_preserves_elements() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1000 + case);
        let v = random_vec(&mut rng, -1e3, 1e3, 1, 63);
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), [n]).unwrap();
        let r = t.reshape([1, n]).unwrap();
        assert_eq!(r.as_slice(), v.as_slice(), "case {case}");
    }
}

#[test]
fn add_commutes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2000 + case);
        let a = random_matrix(&mut rng, 6);
        let b = a.map(|x| x * 0.5 + 1.0);
        assert_eq!(a.add(&b), b.add(&a), "case {case}");
    }
}

#[test]
fn sub_then_add_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3000 + case);
        let a = random_matrix(&mut rng, 6);
        let b = a.map(|x| -x + 2.0);
        let back = a.sub(&b).add(&b);
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5), "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn softmax_is_a_distribution() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4000 + case);
        let v = random_vec(&mut rng, -50.0, 50.0, 1, 15);
        let n = v.len();
        let s = Tensor::from_vec(v, [n]).unwrap().softmax();
        let sum: f32 = s.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum {sum}");
        assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)), "case {case}");
    }
}

#[test]
fn softmax_invariant_to_constant_shift() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5000 + case);
        let v = random_vec(&mut rng, -5.0, 5.0, 2, 7);
        let c = rng.uniform_in(-20.0, 20.0);
        let n = v.len();
        let t = Tensor::from_vec(v, [n]).unwrap();
        let a = t.softmax();
        let b = t.shift(c).softmax();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6000 + case);
        // (A + A') · B == A·B + A'·B
        let a = random_matrix(&mut rng, 5);
        let a2 = a.map(|x| 0.3 * x - 1.0);
        let k = a.dims()[1];
        let b = Tensor::from_fn([k, 3], |i| (i as f32 * 0.7).sin());
        let lhs = matmul(&a.add(&a2), &b);
        let rhs = matmul(&a, &b).add(&matmul(&a2, &b));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-2, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn transpose_variants_agree() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7000 + case);
        let a = random_matrix(&mut rng, 5);
        let k = a.dims()[1];
        let b = Tensor::from_fn([4, k], |i| (i as f32 * 0.3).cos());
        let via_bt = matmul_bt(&a, &b);
        let via_plain = matmul(&a, &b.transposed());
        for (x, y) in via_bt.as_slice().iter().zip(via_plain.as_slice()) {
            assert!((x - y).abs() < 1e-3, "case {case}: {x} vs {y}");
        }
        let c = Tensor::from_fn([a.dims()[0], 3], |i| (i as f32 * 0.9).sin());
        let via_at = matmul_at(&a, &c);
        let via_plain = matmul(&a.transposed(), &c);
        for (x, y) in via_at.as_slice().iter().zip(via_plain.as_slice()) {
            assert!((x - y).abs() < 1e-3, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn im2col_col2im_adjoint() {
    let mut tried = 0u64;
    let mut case = 0u64;
    while tried < CASES {
        case += 1;
        let mut rng = Rng::new(0x8000 + case);
        let h = 3 + rng.below(5);
        let w = 3 + rng.below(5);
        let k = 1 + rng.below(3);
        let s = 1 + rng.below(2);
        let p = rng.below(2);
        if h + 2 * p < k || w + 2 * p < k {
            continue;
        }
        tried += 1;
        let g = ConvGeometry {
            channels: 2,
            height: h,
            width: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        };
        let x: Vec<f32> = (0..2 * h * w).map(|i| ((i * 37 % 97) as f32 - 48.0) / 48.0).collect();
        let y = Tensor::from_fn([g.patch_len(), g.out_positions()], |i| {
            ((i * 13 % 89) as f32 - 44.0) / 44.0
        });
        let lhs: f32 = im2col(&x, &g).as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(col2im(&y, &g).iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "case {case}: {lhs} vs {rhs}");
    }
}

#[test]
fn shape_offset_is_bijective() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x9000 + case);
        let rank = 1 + rng.below(3);
        let dims: Vec<usize> = (0..rank).map(|_| 1 + rng.below(4)).collect();
        let s = Shape::new(dims.clone());
        let mut seen = vec![false; s.len()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = s.offset(&idx);
            assert!(!seen[off], "case {case}: offset {off} repeated");
            seen[off] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 {
                    break;
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < dims[axis] {
                    break;
                }
                idx[axis] = 0;
                if axis == 0 {
                    break;
                }
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
        assert!(seen.iter().all(|&v| v), "case {case}: offsets not exhaustive");
    }
}
