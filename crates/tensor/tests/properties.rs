//! Property-based tests for the tensor substrate.

use nshd_tensor::{col2im, im2col, matmul, matmul_at, matmul_bt, ConvGeometry, Shape, Tensor};
use proptest::prelude::*;

fn small_matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, [r, c]).expect("sized to shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reshape_preserves_elements(v in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), [n]).unwrap();
        let r = t.reshape([1, n]).unwrap();
        prop_assert_eq!(r.as_slice(), v.as_slice());
    }

    #[test]
    fn add_commutes(a in small_matrix(6)) {
        let b = a.map(|x| x * 0.5 + 1.0);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_then_add_round_trips(a in small_matrix(6)) {
        let b = a.map(|x| -x + 2.0);
        let back = a.sub(&b).add(&b);
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5));
        }
    }

    #[test]
    fn softmax_is_a_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..16)) {
        let n = v.len();
        let s = Tensor::from_vec(v, [n]).unwrap().softmax();
        let sum: f32 = s.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_invariant_to_constant_shift(v in proptest::collection::vec(-5.0f32..5.0, 2..8), c in -20.0f32..20.0) {
        let n = v.len();
        let t = Tensor::from_vec(v, [n]).unwrap();
        let a = t.softmax();
        let b = t.shift(c).softmax();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(5)) {
        // (A + A') · B == A·B + A'·B
        let a2 = a.map(|x| 0.3 * x - 1.0);
        let k = a.dims()[1];
        let b = Tensor::from_fn([k, 3], |i| (i as f32 * 0.7).sin());
        let lhs = matmul(&a.add(&a2), &b);
        let rhs = matmul(&a, &b).add(&matmul(&a2, &b));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn transpose_variants_agree(a in small_matrix(5)) {
        let k = a.dims()[1];
        let b = Tensor::from_fn([4, k], |i| (i as f32 * 0.3).cos());
        let via_bt = matmul_bt(&a, &b);
        let via_plain = matmul(&a, &b.transposed());
        for (x, y) in via_bt.as_slice().iter().zip(via_plain.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let c = Tensor::from_fn([a.dims()[0], 3], |i| (i as f32 * 0.9).sin());
        let via_at = matmul_at(&a, &c);
        let via_plain = matmul(&a.transposed(), &c);
        for (x, y) in via_at.as_slice().iter().zip(via_plain.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..8, w in 3usize..8, k in 1usize..4, s in 1usize..3, p in 0usize..2,
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let g = ConvGeometry { channels: 2, height: h, width: w, kernel_h: k, kernel_w: k, stride: s, padding: p };
        let x: Vec<f32> = (0..2 * h * w).map(|i| ((i * 37 % 97) as f32 - 48.0) / 48.0).collect();
        let y = Tensor::from_fn([g.patch_len(), g.out_positions()], |i| ((i * 13 % 89) as f32 - 44.0) / 44.0);
        let lhs: f32 = im2col(&x, &g).as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(col2im(&y, &g).iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn shape_offset_is_bijective(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let s = Shape::new(dims.clone());
        let mut seen = vec![false; s.len()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = s.offset(&idx);
            prop_assert!(!seen[off]);
            seen[off] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 { break; }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < dims[axis] { break; }
                idx[axis] = 0;
                if axis == 0 { break; }
            }
            if idx.iter().all(|&i| i == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&v| v));
    }
}
