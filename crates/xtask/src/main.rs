//! Workspace automation tasks. The only task so far is `lint`, the
//! std-only static gate run by `scripts/check.sh` and CI:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! The lint walks every `crates/*/src` tree (excluding `xtask` itself
//! and test code) and enforces:
//!
//! 1. **No `.unwrap()` / `.expect(` in library code.** Remaining sites
//!    must be listed in `crates/xtask/allowlist.txt` with their exact
//!    count; the gate fails when a file gains a site *or* when the
//!    allowlist overstates one (so the list can only shrink). Binary
//!    targets (`src/bin/`, `src/main.rs`) are exempt.
//! 2. **No panic family in `nshd-runtime`.** `panic!`, `assert!`,
//!    `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()` and
//!    `.expect(` are all forbidden in the serving runtime's library
//!    code — a worker thread must report, never die.
//! 3. **`#[must_use]` on fallible constructors.** Every `pub fn`
//!    returning `Result<Self, _>` in `nshd-core` / `nshd-runtime` must
//!    carry `#[must_use]` so a dropped verification result is a
//!    compile-time warning.
//! 4. **Docs on every `pub fn`** in `nshd-core` / `nshd-runtime`.
//! 5. **No direct clock reads outside `nshd-obs`.** `Instant::now(` and
//!    `SystemTime::now(` are forbidden in every other crate's sources —
//!    instrumented code must route timing through
//!    `nshd_obs::clock::now()` so spans and metrics share one monotonic
//!    clock. Remaining sites live in
//!    `crates/xtask/instant_allowlist.txt`, the same shrink-only ledger
//!    mechanism as rule 1.
//! 6. **No ad-hoc thread creation.** `thread::spawn(`,
//!    `thread::scope(` and `thread::Builder::new(` are forbidden
//!    everywhere except the sanctioned sites listed in
//!    `crates/xtask/thread_allowlist.txt` (shrink-only, like rule 1):
//!    structured data-parallelism belongs in `nshd_tensor::par`, and
//!    long-lived service threads in the `nshd-runtime` pool — scattered
//!    thread creation defeats the `NSHD_THREADS` budget and the span
//!    context propagation both of those layers provide.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// One reported lint failure.
struct Violation {
    path: PathBuf,
    line: usize,
    message: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let files = collect_sources(&root);
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let allowlist = match read_allowlist(&root, "allowlist.txt") {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let instant_allowlist = match read_allowlist(&root, "instant_allowlist.txt") {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let thread_allowlist = match read_allowlist(&root, "thread_allowlist.txt") {
        Ok(list) => list,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut violations = Vec::new();
    let mut unwrap_counts: Vec<(PathBuf, Vec<usize>)> = Vec::new();
    let mut instant_counts: Vec<(PathBuf, Vec<usize>)> = Vec::new();
    let mut thread_counts: Vec<(PathBuf, Vec<usize>)> = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path.strip_prefix(&root).unwrap_or(path).to_path_buf();
        let file = SourceFile::parse(&source);
        check_file(
            &rel,
            &file,
            &mut violations,
            &mut unwrap_counts,
            &mut instant_counts,
            &mut thread_counts,
        );
    }
    check_allowlist(&allowlist, &unwrap_counts, &mut violations, &UNWRAP_RULE);
    check_allowlist(&instant_allowlist, &instant_counts, &mut violations, &INSTANT_RULE);
    check_allowlist(&thread_allowlist, &thread_counts, &mut violations, &THREAD_RULE);

    if violations.is_empty() {
        println!("xtask lint: OK ({} files)", files.len());
        return ExitCode::SUCCESS;
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        eprintln!("{}:{}: {}", v.path.display(), v.line, v.message);
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

/// Locates the workspace root: the nearest ancestor of this binary's
/// manifest directory containing a top-level `Cargo.toml` with a
/// `[workspace]` table (falls back to the current directory).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    while dir.pop() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
    }
    PathBuf::from(".")
}

/// Every `.rs` file under `crates/*/src`, excluding `crates/xtask`,
/// sorted for deterministic reports.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return files;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        walk(&dir.join("src"), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// A parsed source file: the original lines plus a comment- and
/// string-stripped shadow (same line numbering) and a per-line mask of
/// `#[cfg(test)]` code.
struct SourceFile {
    original: Vec<String>,
    stripped: Vec<String>,
    is_test: Vec<bool>,
}

impl SourceFile {
    fn parse(source: &str) -> SourceFile {
        let stripped_text = strip_comments_and_strings(source);
        let original: Vec<String> = source.lines().map(str::to_owned).collect();
        let stripped: Vec<String> = stripped_text.lines().map(str::to_owned).collect();
        let is_test = test_mask(&stripped_text);
        SourceFile { original, stripped, is_test }
    }

    /// Stripped lines of non-test code, with 1-based line numbers.
    fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.stripped
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_test.get(i).copied().unwrap_or(false))
            .map(|(i, line)| (i + 1, line.as_str()))
    }
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines (so line numbers survive). Handles nested block
/// comments, raw strings, and the `'a` lifetime / `'a'` char ambiguity.
fn strip_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' => {
                    // Possible raw-string opener: r"..", r#".."#, br".."
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // `'a` lifetime vs `'a'` char literal: a char
                    // literal closes within a few characters.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    out.push('\n');
                    state = State::Code;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                    i += 1;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\n' {
                    out.push('\n');
                    i += 1;
                } else if c == '\\' {
                    // A `\<newline>` line continuation must keep its
                    // newline or every later line number shifts.
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    out.push(' ');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                    i += 1;
                } else if c == '"' && (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#')) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    out.push(' ');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the item's closing brace, or its `;` for braceless items).
fn test_mask(stripped: &str) -> Vec<bool> {
    let line_count = stripped.lines().count();
    let mut mask = vec![false; line_count];
    let chars: Vec<char> = stripped.chars().collect();
    let text: String = chars.iter().collect();
    let mut search_from = 0;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_start = search_from + found;
        let mut i = attr_start + "#[cfg(test)]".len();
        // Walk to the end of the annotated item: the matching `}` of
        // its first brace, or a top-level `;` before any brace.
        let mut depth = 0usize;
        let mut end = text.len();
        let item = text[i..].char_indices();
        for (off, c) in item {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i + off + 1;
                        break;
                    }
                }
                ';' if depth == 0 => {
                    end = i + off + 1;
                    break;
                }
                _ => {}
            }
        }
        let start_line = text[..attr_start].matches('\n').count();
        let end_line = text[..end].matches('\n').count();
        for line in mask.iter_mut().take(end_line + 1).skip(start_line) {
            *line = true;
        }
        i = end;
        search_from = i.max(attr_start + 1);
    }
    mask
}

/// Whether the path is a binary target (exempt from the unwrap rule:
/// a CLI aborting on bad input is acceptable; a library panicking on a
/// caller's data is not).
fn is_binary_target(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.contains("/src/bin/") || s.ends_with("/src/main.rs")
}

fn in_crate(rel: &Path, krate: &str) -> bool {
    rel.starts_with(Path::new("crates").join(krate))
}

fn check_file(
    rel: &Path,
    file: &SourceFile,
    violations: &mut Vec<Violation>,
    unwrap_counts: &mut Vec<(PathBuf, Vec<usize>)>,
    instant_counts: &mut Vec<(PathBuf, Vec<usize>)>,
    thread_counts: &mut Vec<(PathBuf, Vec<usize>)>,
) {
    let documented_crate =
        in_crate(rel, "core") || in_crate(rel, "runtime") || in_crate(rel, "glue");
    let panic_free_crate = in_crate(rel, "runtime");

    // Rule 1: unwrap/expect sites (library targets only).
    if !is_binary_target(rel) {
        let mut lines = Vec::new();
        for (line_no, line) in file.code_lines() {
            let hits = line.matches(".unwrap()").count() + line.matches(".expect(").count();
            for _ in 0..hits {
                lines.push(line_no);
            }
        }
        if !lines.is_empty() {
            unwrap_counts.push((rel.to_path_buf(), lines));
        }
    }

    // Rule 5: direct clock reads outside nshd-obs (all targets — bench
    // binaries included: everything shares the obs clock).
    if !in_crate(rel, "obs") {
        let mut lines = Vec::new();
        for (line_no, line) in file.code_lines() {
            let hits =
                line.matches("Instant::now(").count() + line.matches("SystemTime::now(").count();
            for _ in 0..hits {
                lines.push(line_no);
            }
        }
        if !lines.is_empty() {
            instant_counts.push((rel.to_path_buf(), lines));
        }
    }

    // Rule 6: thread creation only at the sanctioned sites (the
    // structured-parallelism layer and the runtime's pools).
    {
        let mut lines = Vec::new();
        for (line_no, line) in file.code_lines() {
            let hits = line.matches("thread::spawn(").count()
                + line.matches("thread::scope(").count()
                + line.matches("thread::Builder::new(").count();
            for _ in 0..hits {
                lines.push(line_no);
            }
        }
        if !lines.is_empty() {
            thread_counts.push((rel.to_path_buf(), lines));
        }
    }

    // Rule 2: the serving runtime's library code must never panic.
    if panic_free_crate {
        const FORBIDDEN: &[&str] = &[
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
            "assert!",
            "assert_eq!",
            "assert_ne!",
            "debug_assert!",
            ".unwrap()",
            ".expect(",
        ];
        for (line_no, line) in file.code_lines() {
            for token in FORBIDDEN {
                if line.contains(token) {
                    violations.push(Violation {
                        path: rel.to_path_buf(),
                        line: line_no,
                        message: format!(
                            "`{token}` in nshd-runtime library code: worker and collector \
                             paths must report a PipelineError, not die"
                        ),
                    });
                }
            }
        }
    }

    if !documented_crate {
        return;
    }

    // Rules 3 and 4 need the attribute/doc block above each `pub fn`.
    let stripped = &file.stripped;
    for (line_no, line) in file.code_lines() {
        let idx = line_no - 1;
        let trimmed = line.trim_start();
        let is_pub_fn = trimmed.starts_with("pub fn ")
            || trimmed.starts_with("pub const fn ")
            || trimmed.starts_with("pub unsafe fn ");
        if !is_pub_fn {
            continue;
        }

        // Join the signature until its body opens (or `;`).
        let mut signature = String::new();
        for sig_line in stripped.iter().skip(idx) {
            let _ = write!(signature, "{sig_line} ");
            if sig_line.contains('{') || sig_line.trim_end().ends_with(';') {
                break;
            }
        }
        let compact: String = signature.split_whitespace().collect();

        // The contiguous doc/attribute block directly above.
        let mut has_doc = false;
        let mut has_must_use = false;
        let mut above = idx;
        while above > 0 {
            above -= 1;
            let orig = file.original.get(above).map_or("", |l| l.trim_start());
            if orig.starts_with("///") {
                has_doc = true;
            } else if orig.starts_with("#[") || orig.starts_with("#![") {
                if orig.contains("must_use") {
                    has_must_use = true;
                }
            } else {
                break;
            }
        }

        // Rule 3: fallible constructors must be #[must_use].
        if compact.contains("->Result<Self") && !has_must_use {
            violations.push(Violation {
                path: rel.to_path_buf(),
                line: line_no,
                message: "fallible constructor returns `Result<Self, _>` but lacks \
                          `#[must_use]`"
                    .into(),
            });
        }

        // Rule 4: every pub fn in core/runtime carries a doc comment.
        if !has_doc {
            violations.push(Violation {
                path: rel.to_path_buf(),
                line: line_no,
                message: "undocumented `pub fn` (nshd-core / nshd-runtime require doc \
                          comments on the public API)"
                    .into(),
            });
        }
    }
}

/// One shrink-only allowlisted rule: which ledger file it reads and how
/// its violations are worded.
struct AllowRule {
    /// Ledger file name under `crates/xtask/`.
    file: &'static str,
    /// What the forbidden token is, for messages.
    what: &'static str,
    /// What to do instead.
    advice: &'static str,
}

const UNWRAP_RULE: AllowRule = AllowRule {
    file: "allowlist.txt",
    what: "`.unwrap()`/`.expect(` in library code",
    advice: "propagate the error instead",
};

const INSTANT_RULE: AllowRule = AllowRule {
    file: "instant_allowlist.txt",
    what: "direct `Instant::now()`/`SystemTime::now()` outside nshd-obs",
    advice: "route timing through `nshd_obs::clock::now()`",
};

const THREAD_RULE: AllowRule = AllowRule {
    file: "thread_allowlist.txt",
    what: "ad-hoc thread creation outside the sanctioned sites",
    advice: "use `nshd_tensor::par` for data parallelism or the nshd-runtime pool for \
             service threads",
};

/// `path count` entries from `crates/xtask/<name>`.
fn read_allowlist(root: &Path, name: &str) -> Result<Vec<(PathBuf, usize)>, String> {
    let path = root.join("crates/xtask").join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(file), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{name}:{}: expected `<path> <count>`", no + 1));
        };
        let count: usize =
            count.parse().map_err(|_| format!("{name}:{}: `{count}` is not a count", no + 1))?;
        if count == 0 {
            return Err(format!("{name}:{}: zero-count entries must be removed", no + 1));
        }
        entries.push((PathBuf::from(file), count));
    }
    Ok(entries)
}

/// Compares found forbidden-token sites against a shrink-only
/// allowlist. The gate is one-way: new sites fail, and so does an
/// allowance larger than reality — the list can only shrink over time.
fn check_allowlist(
    allowlist: &[(PathBuf, usize)],
    counts: &[(PathBuf, Vec<usize>)],
    violations: &mut Vec<Violation>,
    rule: &AllowRule,
) {
    for (path, lines) in counts {
        let allowed =
            allowlist.iter().find(|(p, _)| p == path).map(|&(_, count)| count).unwrap_or(0);
        if lines.len() > allowed {
            for &line in &lines[allowed.min(lines.len())..] {
                violations.push(Violation {
                    path: path.clone(),
                    line,
                    message: format!(
                        "{} ({} site(s), {} allowlisted); {}",
                        rule.what,
                        lines.len(),
                        allowed,
                        rule.advice
                    ),
                });
            }
        }
    }
    for (path, allowed) in allowlist {
        let actual = counts.iter().find(|(p, _)| p == path).map_or(0, |(_, l)| l.len());
        if actual < *allowed {
            violations.push(Violation {
                path: path.clone(),
                line: 0,
                message: format!(
                    "allowlist grants {allowed} site(s) of {} but only {actual} remain; \
                     shrink crates/xtask/{}",
                    rule.what, rule.file
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_removes_comments_strings_and_chars() {
        let src = r##"let a = "x.unwrap()"; // .unwrap()
/* panic! */ let b = 'p'; let c: &'static str = r#".expect("#;
"##;
        let s = strip_comments_and_strings(src);
        assert!(!s.contains(".unwrap()"), "{s}");
        assert!(!s.contains("panic!"), "{s}");
        assert!(!s.contains(".expect("), "{s}");
        assert!(s.contains("let a ="), "{s}");
        assert!(s.contains("&'static str"), "{s}");
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"a \\\n  b\";\nfn after() {}\n";
        let s = strip_comments_and_strings(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.lines().nth(2).unwrap().contains("fn after"));
    }

    #[test]
    fn nested_block_comments_and_escapes() {
        let s = strip_comments_and_strings("/* a /* b */ still */ code\n\"esc \\\" .unwrap()\"");
        assert!(s.contains("code"));
        assert!(!s.contains("still"));
        assert!(!s.contains(".unwrap()"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let stripped = strip_comments_and_strings(src);
        let mask = test_mask(&stripped);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn pub_fn_rules_fire_on_undocumented_and_unmarked() {
        let src = "impl T {\n    pub fn new() -> Result<Self, E> {\n        todo()\n    }\n}\n";
        let file = SourceFile::parse(src);
        let mut violations = Vec::new();
        let mut counts = Vec::new();
        let mut instants = Vec::new();
        let mut threads = Vec::new();
        check_file(
            Path::new("crates/core/src/x.rs"),
            &file,
            &mut violations,
            &mut counts,
            &mut instants,
            &mut threads,
        );
        assert_eq!(violations.len(), 2, "expected must_use + doc violations");
        assert!(violations.iter().any(|v| v.message.contains("must_use")));
        assert!(violations.iter().any(|v| v.message.contains("undocumented")));
    }

    #[test]
    fn runtime_panic_family_is_reported_and_allowlist_shrinks() {
        let src = "fn f() {\n    panic!(\"boom\");\n    let v = x.unwrap();\n}\n";
        let file = SourceFile::parse(src);
        let mut violations = Vec::new();
        let mut counts = Vec::new();
        let mut instants = Vec::new();
        let mut threads = Vec::new();
        check_file(
            Path::new("crates/runtime/src/x.rs"),
            &file,
            &mut violations,
            &mut counts,
            &mut instants,
            &mut threads,
        );
        assert!(violations.iter().any(|v| v.message.contains("panic!")), "panic not flagged");
        // The same unwrap also lands in the allowlist ledger...
        assert_eq!(counts.len(), 1);
        // ...and an overshooting allowlist entry is itself a violation.
        let allow = vec![(PathBuf::from("crates/runtime/src/x.rs"), 3)];
        let mut shrink = Vec::new();
        check_allowlist(&allow, &counts, &mut shrink, &UNWRAP_RULE);
        assert!(shrink.iter().any(|v| v.message.contains("shrink")), "overshoot not flagged");
    }

    #[test]
    fn instant_rule_fires_outside_obs_only() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        let file = SourceFile::parse(src);
        let mut violations = Vec::new();
        let mut counts = Vec::new();
        let mut instants = Vec::new();
        let mut threads = Vec::new();
        check_file(
            Path::new("crates/tensor/src/x.rs"),
            &file,
            &mut violations,
            &mut counts,
            &mut instants,
            &mut threads,
        );
        assert_eq!(instants, vec![(PathBuf::from("crates/tensor/src/x.rs"), vec![2])]);
        // An empty ledger turns that site into a violation.
        let mut flagged = Vec::new();
        check_allowlist(&[], &instants, &mut flagged, &INSTANT_RULE);
        assert!(
            flagged.iter().any(|v| v.message.contains("nshd_obs::clock::now()")),
            "clock advice missing: {:?}",
            flagged.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
        // The same source inside nshd-obs itself is exempt.
        let mut obs_instants = Vec::new();
        check_file(
            Path::new("crates/obs/src/clock.rs"),
            &file,
            &mut violations,
            &mut counts,
            &mut obs_instants,
            &mut threads,
        );
        assert!(obs_instants.is_empty(), "obs must be exempt: {obs_instants:?}");
    }

    #[test]
    fn thread_rule_counts_every_creation_form() {
        let src = "fn f() {\n    std::thread::spawn(|| ());\n    std::thread::scope(|_| ());\n    \
                   let b = std::thread::Builder::new();\n}\n";
        let file = SourceFile::parse(src);
        let mut violations = Vec::new();
        let mut counts = Vec::new();
        let mut instants = Vec::new();
        let mut threads = Vec::new();
        check_file(
            Path::new("crates/nn/src/x.rs"),
            &file,
            &mut violations,
            &mut counts,
            &mut instants,
            &mut threads,
        );
        assert_eq!(threads, vec![(PathBuf::from("crates/nn/src/x.rs"), vec![2, 3, 4])]);
        // With no ledger entry every site is a violation carrying the
        // structured-parallelism advice.
        let mut flagged = Vec::new();
        check_allowlist(&[], &threads, &mut flagged, &THREAD_RULE);
        assert_eq!(flagged.len(), 3);
        assert!(flagged.iter().all(|v| v.message.contains("nshd_tensor::par")));
        // A matching ledger entry sanctions them; an oversized one fails.
        let exact = vec![(PathBuf::from("crates/nn/src/x.rs"), 3)];
        let mut ok = Vec::new();
        check_allowlist(&exact, &threads, &mut ok, &THREAD_RULE);
        assert!(ok.is_empty(), "{:?}", ok.iter().map(|v| &v.message).collect::<Vec<_>>());
        let oversized = vec![(PathBuf::from("crates/nn/src/x.rs"), 4)];
        let mut shrink = Vec::new();
        check_allowlist(&oversized, &threads, &mut shrink, &THREAD_RULE);
        assert!(shrink.iter().any(|v| v.message.contains("shrink")));
    }
}
