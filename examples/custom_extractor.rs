//! Custom feature extractors: the paper notes NSHD "can take virtually
//! any deep learning model as its feature extractor". This example builds
//! a user-defined CNN from the layer primitives, trains it, and plugs it
//! into the NSHD pipeline unchanged.
//!
//! ```sh
//! cargo run --release --example custom_extractor
//! ```

use nshd::core::{NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::nn::{
    evaluate, fit, ActKind, Activation, Adam, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear,
    MaxPool2d, Model, Sequential, TrainConfig,
};
use nshd::tensor::Rng;

/// A bespoke little CNN: three conv–BN–ReLU stages with pooling.
fn build_custom(num_classes: usize, rng: &mut Rng) -> Model {
    let features = Sequential::new()
        .with(Conv2d::new(3, 12, 3, 1, 1, rng)) // 0
        .with(BatchNorm2d::new(12)) // 1
        .with(Activation::new(ActKind::Relu)) // 2
        .with(MaxPool2d::new(2)) // 3
        .with(Conv2d::new(12, 24, 3, 1, 1, rng)) // 4
        .with(BatchNorm2d::new(24)) // 5
        .with(Activation::new(ActKind::Relu)) // 6
        .with(MaxPool2d::new(2)) // 7
        .with(Conv2d::new(24, 48, 3, 1, 1, rng)) // 8
        .with(BatchNorm2d::new(48)) // 9
        .with(Activation::new(ActKind::Relu)) // 10
        .with(MaxPool2d::new(2)); // 11
    let classifier = Sequential::new()
        .with(GlobalAvgPool::new())
        .with(Flatten::new())
        .with(Linear::new(48, num_classes, rng));
    Model {
        name: "custom-cnn".into(),
        features,
        classifier,
        input_shape: vec![3, 32, 32],
        num_classes,
    }
}

fn main() {
    let (mut train, mut test) = SynthSpec::synth10(17).with_sizes(400, 150).generate();
    normalize_pair(&mut train, &mut test);

    let mut rng = Rng::new(1);
    let mut teacher = build_custom(10, &mut rng);
    println!(
        "custom CNN: {} parameters, {} MACs/sample",
        teacher.param_count(),
        teacher.total_macs()
    );
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig {
            epochs: 10,
            batch_size: 32,
            seed: 2,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let cnn_acc = evaluate(&mut teacher, test.images(), test.labels(), 50);
    println!("custom CNN accuracy: {cnn_acc:.3}");

    // Truncate after layer 7 (the second pool). The remaining stage and
    // classifier still teach the HD model through distillation.
    for cut in [8usize, 12] {
        let feat_len = teacher.feature_len_at(cut);
        let cfg =
            NshdConfig::new(cut).with_manifold_features(64).with_retrain_epochs(8).with_seed(3);
        let nshd = NshdModel::train(teacher.clone(), &train, cfg);
        let acc = nshd.evaluate(&test);
        println!(
            "NSHD on custom CNN @ layer {:>2} ({feat_len} raw features → 64 manifold): accuracy {acc:.3}",
            cut - 1
        );
    }
}
