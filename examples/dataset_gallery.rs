//! Dumps a gallery of synthetic samples as PPM images so the dataset the
//! experiments run on can be inspected visually.
//!
//! ```sh
//! cargo run --release --example dataset_gallery
//! # then view target/gallery/*.ppm with any image viewer
//! ```

use nshd::data::{render_sample, SynthParams, SynthSpec};
use nshd::tensor::Rng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = "target/gallery";
    std::fs::create_dir_all(dir)?;
    let params = SynthParams::default();
    let mut rng = Rng::new(7);

    // Three variants of each Synth10 class.
    for class in 0..10 {
        for variant in 0..3 {
            let img = render_sample(class, 10, &params, &mut rng);
            let path = format!("{dir}/synth10_c{class}_v{variant}.ppm");
            img.write_ppm(std::fs::File::create(&path)?)?;
        }
    }
    // A row of Synth100 classes (same shape, different palettes).
    for palette in 0..10 {
        let class = 3 * 10 + palette; // shape 3 across all palettes
        let img = render_sample(class, 100, &params, &mut rng);
        let path = format!("{dir}/synth100_shape3_p{palette}.ppm");
        img.write_ppm(std::fs::File::create(&path)?)?;
    }
    println!("wrote 40 samples to {dir}/");

    // Also demonstrate the dataset statistics the experiments rely on.
    let (train, _) = SynthSpec::synth10(7).with_sizes(100, 10).generate();
    let mut counts = vec![0usize; 10];
    for &l in train.labels() {
        counts[l] += 1;
    }
    println!("class balance over 100 samples: {counts:?}");
    Ok(())
}
