//! Edge-deployment planning: use the hardware cost models to choose a
//! cut layer for a target platform, then verify the accuracy cost of the
//! chosen tradeoff — the workflow the paper's Figs. 4, 6 and 10 motivate.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use nshd::core::{nshd_size_from_stats, nshd_workload_from_stats, NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::hwmodel::{cnn_workload_from_stats, DpuModel, EnergyProfile};
use nshd::nn::specs::{arch_stats, SpecVariant};
use nshd::nn::{evaluate, fit, Adam, Architecture, TrainConfig};
use nshd::tensor::Rng;

fn main() {
    let arch = Architecture::EfficientNetB0;
    println!("## Deployment study: {arch} on a ZCU104-class DPU and a Xavier-class GPU\n");

    // --- Plan on the reference-scale architecture (no training needed).
    let stats = arch_stats(arch, SpecVariant::Reference, 10);
    let dpu = DpuModel::zcu104();
    let gpu = EnergyProfile::xavier();
    let cnn = cnn_workload_from_stats(&stats, arch.display_name());
    println!(
        "full CNN: {:.0} FPS on DPU, {:.1} µJ/inference on GPU",
        dpu.fps(&cnn),
        gpu.workload_energy_uj(&cnn)
    );
    println!("\ncut  FPS(DPU)  energy µJ(GPU)  model size MB");
    let mut chosen = None;
    for &cut in arch.paper_cuts() {
        let cfg = NshdConfig::new(cut);
        let w = nshd_workload_from_stats(&stats, arch.display_name(), &cfg, 10);
        let fps = dpu.fps(&w);
        let uj = gpu.workload_energy_uj(&w);
        let mb = nshd_size_from_stats(&stats, &cfg, 10).total_mb();
        println!("{:>3}  {:>8.0}  {:>14.1}  {:>13.2}", cut - 1, fps, uj, mb);
        // Deployment rule of thumb from the paper: pick the earliest cut
        // whose accuracy loss stays under 10%; we start from the earliest
        // and validate below.
        if chosen.is_none() {
            chosen = Some(cut);
        }
    }
    let cut = chosen.expect("at least one cut");
    println!("\nchosen cut: layer {} (earliest → cheapest)\n", cut - 1);

    // --- Validate accuracy at analog scale.
    let (mut train, mut test) = SynthSpec::synth10(7).with_sizes(400, 150).generate();
    normalize_pair(&mut train, &mut test);
    let mut teacher = arch.build(10, &mut Rng::new(1));
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 8, batch_size: 32, seed: 2, ..TrainConfig::default() },
    );
    let cnn_acc = evaluate(&mut teacher, test.images(), test.labels(), 50);
    let cfg = NshdConfig::new(cut).with_retrain_epochs(8).with_seed(3);
    let nshd = NshdModel::train(teacher, &train, cfg);
    let nshd_acc = nshd.evaluate(&test);
    println!(
        "accuracy check: CNN {cnn_acc:.3} vs NSHD@{} {nshd_acc:.3} (loss {:+.3})",
        cut - 1,
        nshd_acc - cnn_acc
    );
    if cnn_acc - nshd_acc < 0.10 {
        println!("→ within the paper's 10% accuracy-loss budget: deploy the truncated model.");
    } else {
        println!("→ over the 10% budget: move the cut one layer deeper and re-plan.");
    }
}
