//! Explainability: inspect what the symbolic side of NSHD learns — class
//! similarity profiles for individual queries, hypervector algebra on
//! class prototypes, and quantitative cluster structure (the paper's
//! Fig. 11 argument, in interactive form).
//!
//! ```sh
//! cargo run --release --example explainability
//! ```

use nshd::analyze::{fisher_ratio, knn_agreement, tsne, TsneConfig};
use nshd::core::{NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::hdc::cosine_dense_bipolar;
use nshd::nn::{fit, Adam, Architecture, TrainConfig};
use nshd::tensor::{Rng, Tensor};

fn main() {
    let (mut train, mut test) = SynthSpec::synth10(9).with_sizes(300, 120).generate();
    normalize_pair(&mut train, &mut test);
    let mut teacher = Architecture::EfficientNetB0.build(10, &mut Rng::new(1));
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 8, batch_size: 32, seed: 2, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(8).with_retrain_epochs(8).with_seed(3);
    let nshd = NshdModel::train(teacher, &train, cfg);
    println!("NSHD test accuracy: {:.3}\n", nshd.evaluate(&test));

    // 1. Per-query similarity profile: unlike a CNN's opaque logits, the
    //    HD prediction is literally "which stored concept is my query
    //    closest to", and every alternative is scored on the same scale.
    let (image, label) = test.sample(3);
    let hv = nshd.symbolize(&image);
    let mut sims: Vec<(usize, f32)> =
        nshd.memory().similarities(&hv).into_iter().enumerate().collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("query (true class {label}) — top-3 concept matches:");
    for (class, sim) in sims.iter().take(3) {
        println!("  class {class}: similarity {sim:+.3}");
    }

    // 2. Class-prototype algebra: class hypervectors live in one metric
    //    space, so inter-concept relations are directly measurable.
    println!("\nclass-prototype similarity matrix (cosine):");
    let classes = nshd.memory().num_classes();
    for a in 0..classes {
        let ca = nshd.memory().class(a).to_vec();
        let row: Vec<String> = (0..classes)
            .map(|b| {
                let cb = nshd.memory().class(b);
                let norm_a: f32 = ca.iter().map(|v| v * v).sum::<f32>().sqrt();
                let sim = if norm_a == 0.0 {
                    0.0
                } else {
                    // Cosine between two dense prototypes via a bipolar
                    // binarisation of one side.
                    let hb = nshd::hdc::BipolarHv::from_signs(cb);
                    cosine_dense_bipolar(&ca, &hb)
                };
                format!("{sim:+.2}")
            })
            .collect();
        println!("  c{a}: {}", row.join(" "));
    }

    // 3. Quantitative Fig. 11: embed test hypervectors with t-SNE and
    //    score the class clustering.
    let samples = nshd.symbolize_dataset(&test);
    let n = samples.len().min(120);
    let d = samples[0].0.dim();
    let mut data = Tensor::zeros([n, d]);
    let mut labels = Vec::with_capacity(n);
    for (i, (hv, l)) in samples.iter().take(n).enumerate() {
        data.write_slice(i * d, &hv.to_f32());
        labels.push(*l);
    }
    let emb =
        tsne(&data, &TsneConfig { iterations: 200, perplexity: 12.0, ..TsneConfig::default() });
    println!(
        "\nembedding cluster quality: fisher ratio {:.2}, 5-NN agreement {:.2}",
        fisher_ratio(&emb, &labels),
        knn_agreement(&emb, &labels, 5)
    );
    println!("(compare against an untrained model — see the fig11_tsne experiment)");
}
