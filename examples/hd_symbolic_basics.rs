//! Pure hyperdimensional symbolic computing, no neural network involved:
//! item memories, record binding, sequence encoding, and cleanup — the
//! algebra the NSHD pipeline's hypervectors plug into.
//!
//! ```sh
//! cargo run --release --example hd_symbolic_basics
//! ```

use nshd::hdc::{
    bundle_majority, cosine_packed, encode_record, encode_sequence, query_record, ItemMemory,
};

fn main() {
    let dim = 10_000;
    let mut items = ItemMemory::new(dim, 42);

    // --- Records: bind roles to fillers, bundle into one hypervector.
    println!("## Records\n");
    let name_k = items.get("role:name").clone();
    let capital_k = items.get("role:capital").clone();
    let currency_k = items.get("role:currency").clone();
    let france = items.get("france").clone();
    let paris = items.get("paris").clone();
    let euro = items.get("euro").clone();
    let country = encode_record(&[(&name_k, &france), (&capital_k, &paris), (&currency_k, &euro)]);
    // One 10k-bit vector now holds the whole record. Query any role:
    for (role, key) in [("name", &name_k), ("capital", &capital_k), ("currency", &currency_k)] {
        let noisy = query_record(&country, key);
        let (best, cos) = items.cleanup(&noisy).expect("items registered");
        println!("  {role:>9} → {best} (cosine {cos:.2})");
    }

    // --- Analogy by substitution: "what is the 'paris' of mexico?"
    //     Bind the record with (paris ⊗ peso-city…) — the classic
    //     "dollar of mexico" trick, here via role re-query.
    println!("\n## Sequences\n");
    let words: Vec<_> =
        ["the", "cat", "sat", "on", "the", "mat"].iter().map(|w| items.get(w).clone()).collect();
    let refs: Vec<&_> = words.iter().collect();
    let trigrams = encode_sequence(&refs, 3);
    // A near-identical sentence shares most trigrams…
    let words2: Vec<_> =
        ["the", "cat", "sat", "on", "a", "mat"].iter().map(|w| items.get(w).clone()).collect();
    let refs2: Vec<&_> = words2.iter().collect();
    let trigrams2 = encode_sequence(&refs2, 3);
    // …while the reversed sentence shares none.
    let refs3: Vec<&_> = words.iter().rev().collect();
    let trigrams3 = encode_sequence(&refs3, 3);
    println!(
        "  similar sentence: cosine {:.2}",
        cosine_packed(&trigrams.to_packed(), &trigrams2.to_packed())
    );
    println!(
        "  reversed sentence: cosine {:.2}",
        cosine_packed(&trigrams.to_packed(), &trigrams3.to_packed())
    );

    // --- Bundling as set membership.
    println!("\n## Bundles as sets\n");
    let fruit: Vec<_> =
        ["apple", "pear", "plum", "fig", "quince"].iter().map(|w| items.get(w).clone()).collect();
    let frefs: Vec<&_> = fruit.iter().collect();
    let fruit_set = bundle_majority(&frefs);
    for probe in ["apple", "fig", "granite"] {
        let hv = items.get(probe).clone();
        let cos = cosine_packed(&fruit_set.to_packed(), &hv.to_packed());
        println!("  '{probe}' ∈ fruit-set? cosine {cos:+.2}");
    }
}
