//! Quickstart: train a CNN teacher on the synthetic dataset, distil it
//! into an NSHD model, and compare their accuracies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nshd::core::{NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::nn::{evaluate, fit, Adam, Architecture, TrainConfig};
use nshd::tensor::Rng;

fn main() {
    // 1. Data: Synth10, the CIFAR-10 substitute (32×32 RGB, 10 classes).
    let (mut train, mut test) = SynthSpec::synth10(42).with_sizes(400, 150).generate();
    normalize_pair(&mut train, &mut test);
    println!(
        "dataset: {} train / {} test samples, {} classes",
        train.len(),
        test.len(),
        train.num_classes()
    );

    // 2. Teacher: an EfficientNet-B0 analog trained with Adam. The paper
    //    downloads pretrained weights; we train in-repo (DESIGN.md §3).
    let mut teacher = Architecture::EfficientNetB0.build(10, &mut Rng::new(1));
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig {
            epochs: 8,
            batch_size: 32,
            seed: 2,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    let cnn_acc = evaluate(&mut teacher, test.images(), test.labels(), 50);
    println!("CNN accuracy: {cnn_acc:.3}");

    // 3. NSHD: truncate the teacher after block 7 (the paper's layer 7),
    //    learn the manifold compression to F̂ = 100 features, encode into
    //    D = 3,000-dimensional hypervectors, and retrain the class memory
    //    with knowledge distillation from the uncut teacher.
    let config = NshdConfig::new(8) // keep feature blocks 0..8
        .with_hv_dim(3_000)
        .with_manifold_features(100)
        .with_retrain_epochs(8)
        .with_seed(3);
    let nshd = NshdModel::train(teacher, &train, config);
    for epoch in nshd.history() {
        println!("  retrain epoch {:>2}: train accuracy {:.3}", epoch.epoch, epoch.train_accuracy);
    }
    let nshd_acc = nshd.evaluate(&test);
    println!("NSHD accuracy: {nshd_acc:.3} (CNN: {cnn_acc:.3})");

    // 4. Symbolic inference: one image → one query hypervector → nearest
    //    class hypervector.
    let (image, label) = test.sample(0);
    let hv = nshd.symbolize(&image);
    let sims = nshd.memory().similarities(&hv);
    println!("\nquery sample (true class {label}): class similarities");
    for (class, sim) in sims.iter().enumerate() {
        let marker = if class == label { " ← true" } else { "" };
        println!("  class {class}: {sim:+.3}{marker}");
    }
    println!("predicted: {}", nshd.predict(&image));
}
