//! Train once, save, reload, and deploy with a quantised class memory —
//! the workflow a downstream user follows to ship an NSHD model to an
//! edge target (the paper's §VI deployment story, end to end).
//!
//! ```sh
//! cargo run --release --example save_and_deploy
//! ```

use nshd::core::{load_pipeline, NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::hdc::{BinaryMemory, QuantizedMemory};
use nshd::nn::{fit, Adam, Architecture, TrainConfig};
use nshd::tensor::Rng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let (mut train, mut test) = SynthSpec::synth10(23).with_sizes(300, 120).generate();
    normalize_pair(&mut train, &mut test);

    // --- Train.
    let mut teacher = Architecture::MobileNetV2.build(10, &mut Rng::new(1));
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 8, batch_size: 32, seed: 2, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(15).with_retrain_epochs(8).with_seed(3);
    let mut model = NshdModel::train(teacher.clone(), &train, cfg.clone());
    println!("trained accuracy: {:.3}", model.evaluate(&test));

    // --- Save. The random projection is reconstructed from its seed, so
    //     the file holds only teacher weights, scaler, manifold, memory.
    let path = "target/nshd_pipeline.bin";
    let mut file = std::fs::File::create(path)?;
    model.save(&mut file)?;
    drop(file);
    let bytes = std::fs::metadata(path)?.len();
    println!("saved {path} ({bytes} bytes)");

    // --- Reload into a fresh process (simulated by a fresh skeleton).
    let file = std::fs::File::open(path)?;
    let restored = load_pipeline(teacher, &train, cfg, std::io::BufReader::new(file))?;
    println!("restored accuracy: {:.3}", restored.evaluate(&test));

    // --- Deployment quantisation (paper §VI-B: "very minor impacts").
    let samples = restored.symbolize_dataset(&test);
    let f32_acc = restored.memory().accuracy(&samples);
    let int8 = QuantizedMemory::from_memory(restored.memory());
    let binary = BinaryMemory::from_memory(restored.memory());
    println!("\nclass-memory deployment options:");
    println!("  f32    {:>8} bytes  accuracy {:.3}", restored.memory().param_count() * 4, f32_acc);
    println!("  int8   {:>8} bytes  accuracy {:.3}", int8.size_bytes(), int8.accuracy(&samples));
    println!(
        "  binary {:>8} bytes  accuracy {:.3}",
        binary.size_bytes(),
        binary.accuracy(&samples)
    );
    Ok(())
}
