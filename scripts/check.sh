#!/usr/bin/env bash
# Full local gate: everything CI runs, in the same order.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (NSHD_THREADS=1)"
NSHD_THREADS=1 cargo test -q --workspace

echo "==> cargo test (NSHD_THREADS=4)"
# Second pass with the parallel kernels engaged by default: every test
# must pass bit-identically regardless of the ambient worker count.
NSHD_THREADS=4 cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xtask lint"
# Workspace lint gate: no unwrap/expect in library code beyond the
# shrinking allowlist, panic-free nshd-runtime, #[must_use] fallible
# constructors, documented public API in nshd-core / nshd-runtime /
# nshd-glue.
cargo run -q -p xtask -- lint

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> serve_bench --smoke"
# Serving-runtime smoke: tiny model, 2 workers; asserts a well-formed
# JSON report (BENCH_serve.json, with per-stage trace + GFLOP/s) and
# batched == sequential predictions (exits non-zero otherwise).
cargo run --release -q -p nshd-bench --bin serve_bench -- --smoke

echo "==> kernel_bench --smoke"
# Parallel-kernel smoke: serial vs parallel GFLOP/s over a small size
# grid (BENCH_kernels.json). Asserts every parallel output is bitwise
# identical to serial, and — when more than one core is available —
# that at least one GEMM size shows a speedup above 1.0x.
cargo run --release -q -p nshd-bench --bin kernel_bench -- --smoke

echo "==> robustness_sweep --smoke"
# Fault-injection smoke: tiny model, short rate list; asserts a
# well-formed BENCH_robustness.json with in-range accuracy curves and a
# smoke teacher meaningfully above chance.
cargo run --release -q -p nshd-bench --bin robustness_sweep -- --smoke

echo "==> cluster_bench --smoke"
# Fault-tolerant serving smoke: replicated cluster under stall / kill /
# degraded / overload chaos (BENCH_cluster.json). Asserts every request
# resolves, surviving replicas stay bit-identical to the fault-free
# baseline, admission control sheds, failover retries, and p99 stays
# inside the request deadline.
cargo run --release -q -p nshd-bench --bin cluster_bench -- --smoke

echo "==> glue_bench --smoke"
# HD-Glue ensemble smoke: three diverse teachers fused into a consensus
# memory, served with mid-traffic memory / head / replica hot-swaps
# (BENCH_glue.json). Asserts the full fusion's accuracy is at least the
# best single teacher's symbolic accuracy and every in-flight reply
# resolves across swaps.
cargo run --release -q -p nshd-bench --bin glue_bench -- --smoke

echo "==> all checks passed"
