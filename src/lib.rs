//! # nshd
//!
//! A Rust reproduction of **NSHD** — *Comprehensive Integration of
//! Hyperdimensional Computing with Deep Learning towards Neuro-Symbolic
//! AI* (DAC 2023): a neuro-symbolic classifier that symbolises images
//! with a truncated CNN, a learned manifold compression layer, and binary
//! random-projection hyperdimensional encoding, then trains the HD class
//! memory with knowledge distilled from the *uncut* CNN teacher.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`tensor`] — dense `f32` tensor math (the PyTorch-role substrate);
//! - [`nn`] — CNN layers/backprop/optimizers and the model zoo
//!   (VGG16, MobileNetV2, EfficientNet-B0/B7 analogs);
//! - [`data`] — procedural `Synth10`/`Synth100` datasets (CIFAR
//!   substitutes);
//! - [`hdc`] — hypervectors, encoders, associative memory, MASS and
//!   distillation retraining;
//! - [`core`] — the NSHD pipeline and the paper's baselines;
//! - [`runtime`] — batched, multi-threaded inference serving
//!   (micro-batching queue, worker pool, latency metrics);
//! - [`glue`] — HD-Glue multi-teacher symbolic fusion: a consensus
//!   class memory over trained ensembles, with live class growth and
//!   in-flight hot-swap;
//! - [`obs`] — unified tracing, metrics, and profiling (span trees,
//!   counters/gauges/histograms, per-stage FLOP accounting, flame-style
//!   text and JSON reports);
//! - [`hwmodel`] — Xavier-class energy and ZCU104-DPU cost models;
//! - [`analyze`] — t-SNE, PCA, and cluster/classification metrics.
//!
//! # Examples
//!
//! ```no_run
//! use nshd::core::{NshdConfig, NshdModel};
//! use nshd::data::{normalize_pair, SynthSpec};
//! use nshd::nn::{fit, Adam, Architecture, TrainConfig};
//! use nshd::tensor::Rng;
//!
//! let (mut train, mut test) = SynthSpec::synth10(42).generate();
//! normalize_pair(&mut train, &mut test);
//! let mut teacher = Architecture::EfficientNetB0.build(10, &mut Rng::new(1));
//! fit(&mut teacher, train.images(), train.labels(),
//!     &mut Adam::new(2e-3, 1e-5), &TrainConfig::default());
//! let mut model = NshdModel::train(teacher, &train, NshdConfig::new(8));
//! println!("NSHD accuracy: {:.3}", model.evaluate(&test));
//! ```
//!
//! Runnable examples live in `examples/`; the experiment harness that
//! regenerates each of the paper's tables and figures is the `nshd-bench`
//! crate (see DESIGN.md and EXPERIMENTS.md).

#![warn(missing_docs)]

pub use nshd_analyze as analyze;
pub use nshd_core as core;
pub use nshd_data as data;
pub use nshd_glue as glue;
pub use nshd_hdc as hdc;
pub use nshd_hwmodel as hwmodel;
pub use nshd_nn as nn;
pub use nshd_obs as obs;
pub use nshd_runtime as runtime;
pub use nshd_tensor as tensor;
