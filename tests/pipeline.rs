//! Cross-crate integration tests: the full NSHD stack, trained
//! end-to-end on the synthetic dataset, must reproduce the paper's
//! qualitative orderings.

use nshd::core::{
    baselinehd_size_from_stats, nshd_size_from_stats, nshd_workload_from_stats, BaselineHd,
    Classifier, NshdConfig, NshdModel, VanillaHd,
};
use nshd::data::{normalize_pair, ImageDataset, SynthSpec};
use nshd::hwmodel::{cnn_workload_from_stats, DpuModel, EnergyProfile};
use nshd::nn::specs::{arch_stats, SpecVariant};
use nshd::nn::{evaluate, fit, Adam, Architecture, Model, TrainConfig};
use nshd::tensor::Rng;
use std::sync::OnceLock;

/// One shared trained teacher + datasets for every integration test.
fn setup() -> (Model, f32, ImageDataset, ImageDataset) {
    static SETUP: OnceLock<(Model, f32, ImageDataset, ImageDataset)> = OnceLock::new();
    SETUP
        .get_or_init(|| {
            let (mut train, mut test) = SynthSpec::synth10(77).with_sizes(300, 120).generate();
            normalize_pair(&mut train, &mut test);
            let mut teacher = Architecture::EfficientNetB0.build(10, &mut Rng::new(5));
            let mut opt = Adam::new(2e-3, 1e-5);
            fit(
                &mut teacher,
                train.images(),
                train.labels(),
                &mut opt,
                &TrainConfig { epochs: 8, batch_size: 32, seed: 3, ..TrainConfig::default() },
            );
            let acc = evaluate(&mut teacher, test.images(), test.labels(), 50);
            (teacher, acc, train, test)
        })
        .clone()
}

#[test]
fn nshd_beats_vanilla_hd_by_a_wide_margin() {
    let (teacher, _, train, test) = setup();
    let mut vanilla = VanillaHd::train(&train, 1_000, 4, 1);
    let vanilla_acc = vanilla.evaluate(&test);
    let cfg = NshdConfig::new(8).with_hv_dim(1_000).with_retrain_epochs(6).with_seed(2);
    let mut nshd = NshdModel::train(teacher, &train, cfg);
    let nshd_acc = Classifier::evaluate(&mut nshd, &test);
    assert!(
        nshd_acc > vanilla_acc + 0.10,
        "NSHD {nshd_acc} vs VanillaHD {vanilla_acc}: neuro-symbolic integration must dominate raw-pixel HD"
    );
}

#[test]
fn nshd_is_competitive_with_its_teacher() {
    let (teacher, cnn_acc, train, test) = setup();
    let cfg = NshdConfig::new(8).with_hv_dim(2_000).with_retrain_epochs(8).with_seed(3);
    let mut nshd = NshdModel::train(teacher, &train, cfg);
    let nshd_acc = Classifier::evaluate(&mut nshd, &test);
    assert!(
        nshd_acc > cnn_acc - 0.10,
        "NSHD {nshd_acc} fell more than 10% below the CNN {cnn_acc}"
    );
}

#[test]
fn baseline_hd_sits_between_vanilla_and_nshd_scale() {
    let (teacher, _, train, test) = setup();
    let mut baseline = BaselineHd::train(teacher, &train, 8, 1_000, 6, 4);
    let acc = baseline.evaluate(&test);
    assert!(acc > 0.3, "BaselineHD accuracy {acc} too weak");
}

#[test]
fn training_is_deterministic_per_seed() {
    let (teacher, _, train, test) = setup();
    let cfg = NshdConfig::new(8).with_hv_dim(500).with_retrain_epochs(3).with_seed(9);
    let mut a = NshdModel::train(teacher.clone(), &train, cfg.clone());
    let mut b = NshdModel::train(teacher, &train, cfg);
    assert_eq!(
        Classifier::evaluate(&mut a, &test),
        Classifier::evaluate(&mut b, &test),
        "same seed must give identical models"
    );
}

#[test]
fn energy_model_prefers_nshd_at_reference_scale() {
    // Fig. 4's ordering: at reference scale, truncation + binary HD beats
    // the full CNN for the paper's early cuts, on every architecture.
    let profile = EnergyProfile::xavier();
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        let cnn = cnn_workload_from_stats(&stats, arch.display_name());
        let cut = arch.paper_cuts()[0];
        let nshd = nshd_workload_from_stats(&stats, arch.display_name(), &NshdConfig::new(cut), 10);
        let imp = profile.improvement_percent(&cnn, &nshd);
        assert!(imp > 0.0, "{arch}: improvement {imp} not positive");
    }
}

#[test]
fn dpu_model_prefers_nshd_throughput() {
    // Fig. 6's ordering.
    let dpu = DpuModel::zcu104();
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        let cnn_fps = dpu.fps(&cnn_workload_from_stats(&stats, arch.display_name()));
        let cut = arch.paper_cuts()[0];
        let nshd_fps = dpu.fps(&nshd_workload_from_stats(
            &stats,
            arch.display_name(),
            &NshdConfig::new(cut),
            10,
        ));
        assert!(nshd_fps > cnn_fps, "{arch}: {nshd_fps} vs {cnn_fps}");
    }
}

#[test]
fn model_sizes_reproduce_table_two_ordering() {
    // Table II's ordering: NSHD < BaselineHD at every paper cut.
    for arch in Architecture::ALL {
        let stats = arch_stats(arch, SpecVariant::Reference, 10);
        for &cut in arch.paper_cuts() {
            let cfg = NshdConfig::new(cut);
            let nshd = nshd_size_from_stats(&stats, &cfg, 10).total();
            let base = baselinehd_size_from_stats(&stats, cut, cfg.hv_dim, 10).total();
            assert!(nshd < base, "{arch}@{cut}: NSHD {nshd} vs BaselineHD {base}");
        }
    }
}

#[test]
fn symbolize_round_trip_predicts_consistently() {
    let (teacher, _, train, test) = setup();
    let cfg = NshdConfig::new(8).with_hv_dim(500).with_retrain_epochs(2).with_seed(6);
    let nshd = NshdModel::train(teacher, &train, cfg);
    for i in 0..5 {
        let (img, _) = test.sample(i);
        let hv = nshd.symbolize(&img);
        assert_eq!(nshd.predict(&img), nshd.memory().predict(&hv));
        assert_eq!(hv.dim(), 500);
    }
}
