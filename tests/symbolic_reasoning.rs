//! Neuro-symbolic integration: hypervectors produced by the *neural*
//! symbolisation pipeline compose with the *symbolic* HD algebra — the
//! combination the paper's title promises.

use nshd::core::{NshdConfig, NshdModel};
use nshd::data::{normalize_pair, SynthSpec};
use nshd::hdc::{bind, cosine_dense_bipolar, encode_record, query_record, BipolarHv, ItemMemory};
use nshd::nn::{fit, Adam, Architecture, TrainConfig};
use nshd::tensor::Rng;

fn trained_model() -> (NshdModel, nshd::data::ImageDataset) {
    let (mut train, mut test) = SynthSpec::synth10(55).with_sizes(200, 60).generate();
    normalize_pair(&mut train, &mut test);
    let mut teacher = Architecture::MobileNetV2.build(10, &mut Rng::new(2));
    let mut opt = Adam::new(2e-3, 1e-5);
    fit(
        &mut teacher,
        train.images(),
        train.labels(),
        &mut opt,
        &TrainConfig { epochs: 6, batch_size: 32, seed: 3, ..TrainConfig::default() },
    );
    let cfg = NshdConfig::new(15).with_hv_dim(4_096).with_retrain_epochs(6).with_seed(4);
    (NshdModel::train(teacher, &train, cfg), test)
}

/// Bind a symbolised image into a key–value record together with purely
/// symbolic atoms, then recover the image slot and classify it — the
/// neural hypervector survives symbolic composition.
#[test]
fn symbolised_images_survive_record_composition() {
    let (model, test) = trained_model();
    let dim = model.memory().dim();
    let mut items = ItemMemory::new(dim, 9);
    let what_key = items.get("what").clone();
    let where_key = items.get("where").clone();
    let kitchen = items.get("kitchen").clone();

    let (img, label) = test.sample(0);
    let observed = model.symbolize(&img);
    let scene = encode_record(&[(&what_key, &observed), (&where_key, &kitchen)]);

    // Recover the "what" slot. Record binarisation halves the signal, so
    // we compare classification of the recovered slot with the original.
    let recovered = query_record(&scene, &what_key);
    let direct_prediction = model.memory().predict(&observed);
    let recovered_prediction = model.memory().predict(&recovered);
    assert_eq!(direct_prediction, recovered_prediction, "true label {label}");

    // The "where" slot cleans up to the symbolic atom.
    let recovered_place = query_record(&scene, &where_key);
    let (best, cos) = items.cleanup(&recovered_place).expect("non-empty item memory");
    assert_eq!(best, "kitchen", "cleanup gave {best} at {cos}");
}

/// Class prototypes binarise into symbols that behave like any other
/// hypervector under binding: `C_a ⊗ C_b` is quasi-orthogonal to both.
#[test]
fn class_prototypes_act_as_symbols() {
    let (model, _) = trained_model();
    let mem = model.memory();
    let proto = |c: usize| BipolarHv::from_signs(mem.class(c));
    let a = proto(0);
    let b = proto(1);
    let bound = bind(&a, &b);
    let cos_a = cosine_dense_bipolar(&a.to_f32(), &bound);
    let cos_b = cosine_dense_bipolar(&b.to_f32(), &bound);
    assert!(cos_a.abs() < 0.2, "bound symbol leaks class 0: {cos_a}");
    assert!(cos_b.abs() < 0.2, "bound symbol leaks class 1: {cos_b}");
    // Unbinding restores the original exactly (bind is self-inverse).
    assert_eq!(bind(&bound, &b), a);
}
